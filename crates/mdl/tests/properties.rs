//! Property-based tests for MDL codecs: `parse ∘ compose` is the
//! identity over well-typed messages, for all three dialects.

use proptest::prelude::*;
use starlink_mdl::{MdlCodec, MessageCodec};
use starlink_message::{AbstractMessage, Field, Value};

const BINARY_SPEC: &str = "\
<Message:Bin>
<Kind:8>
<Id:32>
<Signed:16:int>
<Score:64:float>
<NameLength:32>
<Name:NameLength:text>
<align:64>
<Params:eof:valueseq>
<End:Message>";

fn primitive() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<u64>().prop_map(Value::UInt),
        any::<bool>().prop_map(Value::Bool),
        // Finite floats only: NaN breaks equality, infinities round-trip.
        any::<i32>().prop_map(|i| Value::Float(f64::from(i) / 8.0)),
        "[a-zA-Z0-9 _.-]{0,16}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..12).prop_map(Value::Bytes),
    ]
}

fn nested_value() -> impl Strategy<Value = Value> {
    primitive().prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
            proptest::collection::vec(("[a-z][a-z0-9]{0,5}", inner), 0..4).prop_map(|fs| {
                Value::Struct(fs.into_iter().map(|(l, v)| Field::new(l, v)).collect())
            }),
        ]
    })
}

proptest! {
    #[test]
    fn binary_roundtrip(
        kind in 0u64..256,
        id in any::<u32>(),
        signed in any::<i16>(),
        score in any::<i32>().prop_map(|i| f64::from(i) / 4.0),
        name in "[a-zA-Z0-9 ]{0,24}",
        params in proptest::collection::vec(nested_value(), 0..5),
    ) {
        let codec = MdlCodec::from_text(BINARY_SPEC).unwrap();
        let mut msg = AbstractMessage::new("Bin");
        msg.set_field("Kind", Value::UInt(kind));
        msg.set_field("Id", Value::UInt(u64::from(id)));
        msg.set_field("Signed", Value::Int(i64::from(signed)));
        msg.set_field("Score", Value::Float(score));
        msg.set_field("Name", Value::Str(name.clone()));
        msg.set_field("Params", Value::Array(params.clone()));
        let wire = codec.compose(&msg).unwrap();
        let back = codec.parse(&wire).unwrap();
        prop_assert_eq!(back.get("Kind").unwrap().as_uint(), Some(kind));
        prop_assert_eq!(back.get("Id").unwrap().as_uint(), Some(u64::from(id)));
        prop_assert_eq!(back.get("Signed").unwrap().as_int(), Some(i64::from(signed)));
        prop_assert_eq!(back.get("Score").unwrap().as_float(), Some(score));
        prop_assert_eq!(back.get("Name").unwrap().as_str(), Some(name.as_str()));
        prop_assert_eq!(back.get("Params").unwrap().as_array().unwrap(), params.as_slice());
    }

    #[test]
    fn binary_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let codec = MdlCodec::from_text(BINARY_SPEC).unwrap();
        let _ = codec.parse(&bytes);
    }

    #[test]
    fn text_roundtrip(
        method in "(GET|POST|PUT|DELETE)",
        uri in "/[a-zA-Z0-9/_-]{0,24}",
        headers in proptest::collection::vec(("[A-Za-z][A-Za-z0-9-]{0,10}", "[a-zA-Z0-9 /=_.-]{0,16}"), 0..4),
        body in "[a-zA-Z0-9 <>/=\"_.-]{0,64}",
    ) {
        let spec = "<Dialect:text>\n<Message:Req>\n<Request:Method RequestURI Version>\n<Headers:Headers>\n<Body:Body>\n<End:Message>";
        let codec = MdlCodec::from_text(spec).unwrap();
        let mut msg = AbstractMessage::new("Req");
        msg.set_field("Method", Value::Str(method.clone()));
        msg.set_field("RequestURI", Value::Str(uri.clone()));
        msg.set_field("Version", Value::from("HTTP/1.1"));
        msg.set_field(
            "Headers",
            Value::Struct(
                headers
                    .iter()
                    .map(|(n, v)| Field::new(n.clone(), Value::Str(v.trim().to_owned())))
                    .collect(),
            ),
        );
        msg.set_field("Body", Value::Str(body.clone()));
        let wire = codec.compose(&msg).unwrap();
        let back = codec.parse(&wire).unwrap();
        prop_assert_eq!(back.get("Method").unwrap().as_str(), Some(method.as_str()));
        prop_assert_eq!(back.get("RequestURI").unwrap().as_str(), Some(uri.as_str()));
        prop_assert_eq!(back.get("Body").unwrap().as_str(), Some(body.as_str()));
        // Headers survive (plus the auto Content-Length).
        let parsed_headers = back.get("Headers").unwrap().as_struct().unwrap();
        for (n, v) in &headers {
            let found = parsed_headers
                .iter()
                .find(|f| f.label() == n && f.value().as_str() == Some(v.trim()));
            prop_assert!(found.is_some(), "header {} lost", n);
        }
    }

    #[test]
    fn xml_roundtrip(
        method in "[a-zA-Z][a-zA-Z0-9._]{0,16}",
        params in proptest::collection::vec("[a-zA-Z0-9 _.-]{0,16}", 0..5),
    ) {
        let spec = "<Dialect:xml>\n<Message:Call>\n<Root:methodCall>\n<Text:MethodName=methodName>\n<List:Params=params/param>\n<End:Message>";
        let codec = MdlCodec::from_text(spec).unwrap();
        let mut msg = AbstractMessage::new("Call");
        msg.set_field("MethodName", Value::Str(method.clone()));
        msg.set_field(
            "Params",
            Value::Array(params.iter().map(|p| Value::Str(p.clone())).collect()),
        );
        let wire = codec.compose(&msg).unwrap();
        let back = codec.parse(&wire).unwrap();
        prop_assert_eq!(back.get("MethodName").unwrap().as_str(), Some(method.as_str()));
        let got = back.get("Params").unwrap().as_array().unwrap();
        prop_assert_eq!(got.len(), params.len());
        for (g, p) in got.iter().zip(&params) {
            prop_assert_eq!(g.to_text(), p.clone());
        }
    }

    #[test]
    fn xml_tree_values_roundtrip(v in nested_value()) {
        // Lists without item rules use the canonical tree mapping; any
        // nested value must survive (primitives become their text form).
        let spec = "<Dialect:xml>\n<Message:M>\n<Root:r>\n<List:Items=list/item>\n<End:Message>";
        let codec = MdlCodec::from_text(spec).unwrap();
        let mut msg = AbstractMessage::new("M");
        msg.set_field("Items", Value::Array(vec![v.clone()]));
        let wire = codec.compose(&msg).unwrap();
        let back = codec.parse(&wire).unwrap();
        let items = back.get("Items").unwrap().as_array().unwrap();
        prop_assert_eq!(items.len(), 1);
        // One roundtrip normalises (primitives become text, empty
        // containers flatten); a second roundtrip must be the identity.
        let wire2 = codec.compose(&back).unwrap();
        let back2 = codec.parse(&wire2).unwrap();
        prop_assert_eq!(back2, back);
    }
}
