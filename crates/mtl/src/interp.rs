use crate::ast::{Expr, LValue, MtlProgram, Statement};
use crate::cache::TranslationCache;
use crate::error::MtlLangError;
use crate::Result;
use starlink_message::{get_value_path, set_value_path, AbstractMessage, Field, History, Value};
use std::collections::HashMap;

/// The environment an MTL program executes in.
///
/// References resolve in this order:
///
/// 1. **local variables** introduced by `let` / `foreach`,
/// 2. **output slots** — messages being composed, keyed by the merged
///    state at which they will be sent (the paper's `S22.Msg`),
/// 3. **history states** — messages previously sent/received, keyed by
///    the state where the automata engine recorded them (`S21.Msg`).
pub struct MtlContext<'a> {
    history: &'a History,
    cache: &'a mut TranslationCache,
    outputs: HashMap<String, AbstractMessage>,
    locals: HashMap<String, Value>,
    host_override: Option<String>,
}

impl<'a> MtlContext<'a> {
    /// Creates a context over a history and a (session-scoped) cache.
    pub fn new(history: &'a History, cache: &'a mut TranslationCache) -> MtlContext<'a> {
        MtlContext {
            history,
            cache,
            outputs: HashMap::new(),
            locals: HashMap::new(),
            host_override: None,
        }
    }

    /// Registers a message under composition at the given state slot.
    pub fn add_output(&mut self, state: impl Into<String>, message: AbstractMessage) {
        self.outputs.insert(state.into(), message);
    }

    /// The composed message at a slot, if any.
    pub fn output(&self, state: &str) -> Option<&AbstractMessage> {
        self.outputs.get(state)
    }

    /// Removes and returns a composed message.
    pub fn take_output(&mut self, state: &str) -> Option<AbstractMessage> {
        self.outputs.remove(state)
    }

    /// Endpoint rebinding requested via `sethost(...)`, if any.
    pub fn host_override(&self) -> Option<&str> {
        self.host_override.as_deref()
    }

    /// Read access to the translation cache.
    pub fn cache(&self) -> &TranslationCache {
        self.cache
    }

    fn resolve_ref(&self, slot: &str, path: Option<&starlink_message::FieldPath>) -> Result<Value> {
        if let Some(local) = self.locals.get(slot) {
            return match path {
                None => Ok(local.clone()),
                Some(p) => {
                    get_value_path(local, p)
                        .cloned()
                        .map_err(|e| MtlLangError::PathResolution {
                            reference: format!("{slot}.{p}"),
                            cause: e.to_string(),
                        })
                }
            };
        }
        if let Some(msg) = self.outputs.get(slot) {
            return match path {
                None => Ok(Value::Struct(msg.fields().to_vec())),
                Some(p) => msg
                    .get_path(p)
                    .cloned()
                    .map_err(|e| MtlLangError::PathResolution {
                        reference: format!("{slot}.{p}"),
                        cause: e.to_string(),
                    }),
            };
        }
        if let Some(entry) = self.history.at_state(slot) {
            return match path {
                None => Ok(Value::Struct(entry.message.fields().to_vec())),
                Some(p) => {
                    entry
                        .message
                        .get_path(p)
                        .cloned()
                        .map_err(|e| MtlLangError::PathResolution {
                            reference: format!("{slot}.{p}"),
                            cause: e.to_string(),
                        })
                }
            };
        }
        Err(MtlLangError::UnknownReference {
            name: slot.to_owned(),
        })
    }

    /// Pushes onto the array at `target`, creating it when absent —
    /// in place, so Fig. 9-style `foreach`+`append` loops stay linear.
    fn append(&mut self, target: &LValue, element: Value) -> Result<()> {
        if let Some(slot_value) = self.resolve_mut(target) {
            if slot_value.is_null() {
                *slot_value = Value::Array(vec![element]);
                return Ok(());
            }
            return match slot_value {
                Value::Array(items) => {
                    items.push(element);
                    Ok(())
                }
                other => Err(MtlLangError::BadAssignment {
                    target: target.to_string(),
                    message: format!("append target is {}, not an array", other.kind()),
                }),
            };
        }
        // Target does not exist yet: create a fresh one-element array.
        self.assign(target, Value::Array(vec![element]))
    }

    /// Mutable resolution of an lvalue, when it already exists.
    fn resolve_mut(&mut self, target: &LValue) -> Option<&mut Value> {
        if self.locals.contains_key(&target.slot) {
            let local = self.locals.get_mut(&target.slot)?;
            return match &target.path {
                None => Some(local),
                Some(p) => starlink_message::get_value_path_mut(local, p).ok(),
            };
        }
        if self.outputs.contains_key(&target.slot) {
            let msg = self.outputs.get_mut(&target.slot)?;
            return match &target.path {
                None => None,
                Some(p) => msg.get_path_mut(p).ok(),
            };
        }
        None
    }

    fn assign(&mut self, target: &LValue, value: Value) -> Result<()> {
        if let Some(local) = self.locals.get_mut(&target.slot) {
            return match &target.path {
                None => {
                    *local = value;
                    Ok(())
                }
                Some(p) => {
                    set_value_path(local, p, value).map_err(|e| MtlLangError::BadAssignment {
                        target: target.to_string(),
                        message: e.to_string(),
                    })
                }
            };
        }
        if let Some(msg) = self.outputs.get_mut(&target.slot) {
            return match &target.path {
                None => Err(MtlLangError::BadAssignment {
                    target: target.to_string(),
                    message: "cannot replace a whole output message; assign fields".into(),
                }),
                Some(p) => msg
                    .set_path(p, value)
                    .map_err(|e| MtlLangError::BadAssignment {
                        target: target.to_string(),
                        message: e.to_string(),
                    }),
            };
        }
        Err(MtlLangError::BadAssignment {
            target: target.to_string(),
            message: "target is neither a local nor an output slot".into(),
        })
    }
}

impl MtlProgram {
    /// Executes the program in the given context.
    ///
    /// # Errors
    ///
    /// Any [`MtlLangError`] raised by reference resolution, assignment, or
    /// builtin evaluation. Execution is not transactional: earlier
    /// statements' effects remain on error (callers treat the mediation
    /// exchange as failed).
    pub fn execute(&self, ctx: &mut MtlContext<'_>) -> Result<()> {
        for statement in &self.statements {
            exec_statement(statement, ctx)?;
        }
        Ok(())
    }

    /// Executes the program, reporting a timed
    /// [`TraceEvent::Translate`][starlink_telemetry::TraceEvent::Translate]
    /// to `sink`. When the sink is disabled this is exactly
    /// [`MtlProgram::execute`] — no clock is read.
    ///
    /// # Errors
    ///
    /// Same as [`MtlProgram::execute`]; the event is emitted even for
    /// failed executions (the duration of a failed translation is still
    /// observable).
    pub fn execute_traced(
        &self,
        ctx: &mut MtlContext<'_>,
        sink: &dyn starlink_telemetry::TelemetrySink,
    ) -> Result<()> {
        if !sink.enabled() {
            return self.execute(ctx);
        }
        let start = std::time::Instant::now();
        let result = self.execute(ctx);
        sink.record(&starlink_telemetry::TraceEvent::Translate {
            statements: self.statements.len(),
            nanos: start.elapsed().as_nanos() as u64,
        });
        result
    }
}

fn exec_statement(statement: &Statement, ctx: &mut MtlContext<'_>) -> Result<()> {
    match statement {
        Statement::Assign { target, value } => {
            let v = eval(value, ctx)?;
            ctx.assign(target, v)
        }
        Statement::Let { name, value } => {
            let v = eval(value, ctx)?;
            ctx.locals.insert(name.clone(), v);
            Ok(())
        }
        Statement::Cache { key, value } => {
            let k = eval(key, ctx)?.to_text();
            let v = eval(value, ctx)?;
            ctx.cache.put(k, v);
            Ok(())
        }
        Statement::SetHost { url } => {
            let v = eval(url, ctx)?.to_text();
            ctx.host_override = Some(v);
            Ok(())
        }
        Statement::Append { target, value } => {
            let element = eval(value, ctx)?;
            ctx.append(target, element)
        }
        Statement::ForEach {
            var,
            iterable,
            body,
        } => {
            let items = match eval(iterable, ctx)? {
                Value::Array(items) => items,
                other => {
                    return Err(MtlLangError::NotIterable {
                        found: other.kind().to_owned(),
                    })
                }
            };
            let saved = ctx.locals.get(var).cloned();
            for item in items {
                ctx.locals.insert(var.clone(), item);
                for s in body {
                    exec_statement(s, ctx)?;
                }
            }
            match saved {
                Some(v) => {
                    ctx.locals.insert(var.clone(), v);
                }
                None => {
                    ctx.locals.remove(var);
                }
            }
            Ok(())
        }
    }
}

fn eval(expr: &Expr, ctx: &mut MtlContext<'_>) -> Result<Value> {
    match expr {
        Expr::Str(s) => Ok(Value::Str(s.clone())),
        Expr::Int(i) => Ok(Value::Int(*i)),
        Expr::Bool(b) => Ok(Value::Bool(*b)),
        Expr::Null => Ok(Value::Null),
        Expr::Ref { slot, path } => ctx.resolve_ref(slot, path.as_ref()),
        Expr::Call { name, args } => eval_call(name, args, ctx),
    }
}

fn arity(function: &str, args: &[Expr], n: usize) -> Result<()> {
    if args.len() == n {
        Ok(())
    } else {
        Err(MtlLangError::BadArguments {
            function: function.to_owned(),
            message: format!("expected {n} argument(s), got {}", args.len()),
        })
    }
}

fn eval_call(name: &str, args: &[Expr], ctx: &mut MtlContext<'_>) -> Result<Value> {
    match name {
        "concat" => {
            let mut out = String::new();
            for a in args {
                out.push_str(&eval(a, ctx)?.to_text());
            }
            Ok(Value::Str(out))
        }
        "tostring" => {
            arity(name, args, 1)?;
            Ok(Value::Str(eval(&args[0], ctx)?.to_text()))
        }
        "toint" => {
            arity(name, args, 1)?;
            let v = eval(&args[0], ctx)?;
            if let Some(i) = v.as_int() {
                return Ok(Value::Int(i));
            }
            v.to_text()
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| MtlLangError::BadArguments {
                    function: "toint".into(),
                    message: format!("`{}` is not an integer", v.to_text()),
                })
        }
        "getcache" => {
            arity(name, args, 1)?;
            let key = eval(&args[0], ctx)?.to_text();
            ctx.cache
                .get(&key)
                .cloned()
                .ok_or(MtlLangError::CacheMiss { key })
        }
        "newstruct" => {
            arity(name, args, 0)?;
            Ok(Value::Struct(Vec::new()))
        }
        "newarray" => {
            arity(name, args, 0)?;
            Ok(Value::Array(Vec::new()))
        }
        "genid" => {
            arity(name, args, 0)?;
            Ok(Value::Str(ctx.cache.generate_id()))
        }
        "count" => {
            arity(name, args, 1)?;
            match eval(&args[0], ctx)? {
                Value::Array(items) => Ok(Value::Int(items.len() as i64)),
                Value::Struct(fields) => Ok(Value::Int(fields.len() as i64)),
                other => Err(MtlLangError::BadArguments {
                    function: "count".into(),
                    message: format!("expected array/struct, found {}", other.kind()),
                }),
            }
        }
        "item" => {
            arity(name, args, 2)?;
            let arr = eval(&args[0], ctx)?;
            let idx = eval(&args[1], ctx)?
                .as_int()
                .ok_or_else(|| MtlLangError::BadArguments {
                    function: "item".into(),
                    message: "index must be an integer".into(),
                })?;
            match arr {
                Value::Array(items) => {
                    items
                        .get(idx as usize)
                        .cloned()
                        .ok_or_else(|| MtlLangError::BadArguments {
                            function: "item".into(),
                            message: format!("index {idx} out of bounds ({})", items.len()),
                        })
                }
                other => Err(MtlLangError::BadArguments {
                    function: "item".into(),
                    message: format!("expected array, found {}", other.kind()),
                }),
            }
        }
        "default" => {
            arity(name, args, 2)?;
            match eval(&args[0], ctx) {
                Ok(Value::Null)
                | Err(MtlLangError::UnknownReference { .. })
                | Err(MtlLangError::PathResolution { .. })
                | Err(MtlLangError::CacheMiss { .. }) => eval(&args[1], ctx),
                other => other,
            }
        }
        "field" => {
            // field(name, value) — a labelled field for building structs
            // alongside newstruct/append.
            arity(name, args, 2)?;
            let label = eval(&args[0], ctx)?.to_text();
            let value = eval(&args[1], ctx)?;
            Ok(Value::Struct(vec![Field::new(label, value)]))
        }
        other => Err(MtlLangError::UnknownFunction {
            name: other.to_owned(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_message::Direction;

    fn search_history() -> History {
        let mut h = History::new();
        let mut req = AbstractMessage::new("flickr.photos.search");
        req.set_field("text", Value::from("tree"));
        req.set_field("per_page", Value::Int(3));
        h.record("m1", Direction::Received, req);
        h
    }

    #[test]
    fn fig8_field_assignments() {
        let h = search_history();
        let mut cache = TranslationCache::new();
        let mut ctx = MtlContext::new(&h, &mut cache);
        ctx.add_output("m2", AbstractMessage::new("picasa.photos.search"));
        MtlProgram::parse("m2.q = m1.text\nm2.max-results = m1.per_page")
            .unwrap()
            .execute(&mut ctx)
            .unwrap();
        let out = ctx.output("m2").unwrap();
        assert_eq!(out.get("q").unwrap().as_str(), Some("tree"));
        assert_eq!(out.get("max-results").unwrap().as_int(), Some(3));
    }

    #[test]
    fn fig9_search_response_with_cache() {
        // Picasa reply with two entries arrives at m5; the mediator builds
        // the Flickr photo-id list at m6 and caches entries (Fig. 9).
        let mut h = History::new();
        let mut reply = AbstractMessage::new("picasa.search.reply");
        reply
            .set_path(
                &"entries[0]".parse().unwrap(),
                Value::Struct(vec![
                    Field::new("id", Value::from("gphoto-1")),
                    Field::new("title", Value::from("Tree")),
                    Field::new("url", Value::from("http://x/1.jpg")),
                ]),
            )
            .unwrap();
        reply
            .set_path(
                &"entries[1]".parse().unwrap(),
                Value::Struct(vec![
                    Field::new("id", Value::from("gphoto-2")),
                    Field::new("title", Value::from("Oak")),
                    Field::new("url", Value::from("http://x/2.jpg")),
                ]),
            )
            .unwrap();
        h.record("m5", Direction::Received, reply);

        let mut cache = TranslationCache::new();
        let mut ctx = MtlContext::new(&h, &mut cache);
        ctx.add_output("m6", AbstractMessage::new("flickr.search.reply"));
        MtlProgram::parse(
            r#"
foreach e in m5.entries {
  let p = newstruct()
  p.id = genid()
  cache(p.id, e)
  append(m6.photos, p)
}
"#,
        )
        .unwrap()
        .execute(&mut ctx)
        .unwrap();

        let out = ctx.output("m6").unwrap();
        let photos = out.get("photos").unwrap().as_array().unwrap();
        assert_eq!(photos.len(), 2);
        let first_id = get_value_path(&photos[0], &"id".parse().unwrap())
            .unwrap()
            .to_text();
        assert_eq!(first_id, "1000");
        // Fig. 10: the cached Picasa entry is retrievable by the dummy id.
        let cached = ctx.cache().get("1000").unwrap();
        assert_eq!(
            get_value_path(cached, &"title".parse().unwrap())
                .unwrap()
                .as_str(),
            Some("Tree")
        );
    }

    #[test]
    fn fig10_getinfo_from_cache() {
        let mut h = History::new();
        let mut getinfo = AbstractMessage::new("flickr.photos.getInfo");
        getinfo.set_field("photo_id", Value::from("1000"));
        h.record("m8", Direction::Received, getinfo);

        let mut cache = TranslationCache::new();
        cache.put(
            "1000",
            Value::Struct(vec![
                Field::new("title", Value::from("Tree")),
                Field::new("url", Value::from("http://x/1.jpg")),
            ]),
        );
        let mut ctx = MtlContext::new(&h, &mut cache);
        ctx.add_output("m9", AbstractMessage::new("flickr.photos.getInfo.reply"));
        MtlProgram::parse(
            "let entry = getcache(m8.photo_id)\nm9.photo = entry\nm9.url = entry.url",
        )
        .unwrap()
        .execute(&mut ctx)
        .unwrap();
        let out = ctx.output("m9").unwrap();
        assert_eq!(out.get("url").unwrap().as_str(), Some("http://x/1.jpg"));
        assert!(matches!(out.get("photo"), Some(Value::Struct(_))));
    }

    #[test]
    fn cache_miss_is_an_error() {
        let h = History::new();
        let mut cache = TranslationCache::new();
        let mut ctx = MtlContext::new(&h, &mut cache);
        ctx.add_output("o", AbstractMessage::new("out"));
        let err = MtlProgram::parse("o.x = getcache(\"nope\")")
            .unwrap()
            .execute(&mut ctx)
            .unwrap_err();
        assert!(matches!(err, MtlLangError::CacheMiss { .. }));
    }

    #[test]
    fn sethost_override() {
        let h = History::new();
        let mut cache = TranslationCache::new();
        let mut ctx = MtlContext::new(&h, &mut cache);
        MtlProgram::parse("sethost(\"https://picasaweb.google.com\")")
            .unwrap()
            .execute(&mut ctx)
            .unwrap();
        assert_eq!(ctx.host_override(), Some("https://picasaweb.google.com"));
    }

    #[test]
    fn builtins() {
        let h = search_history();
        let mut cache = TranslationCache::new();
        let mut ctx = MtlContext::new(&h, &mut cache);
        ctx.add_output("o", AbstractMessage::new("out"));
        MtlProgram::parse(
            r#"
o.joined = concat("q=", m1.text, "&n=", tostring(m1.per_page))
o.n = toint("42")
o.missing = default(m1.nosuch, "fallback")
"#,
        )
        .unwrap()
        .execute(&mut ctx)
        .unwrap();
        let out = ctx.output("o").unwrap();
        assert_eq!(out.get("joined").unwrap().as_str(), Some("q=tree&n=3"));
        assert_eq!(out.get("n").unwrap().as_int(), Some(42));
        assert_eq!(out.get("missing").unwrap().as_str(), Some("fallback"));
    }

    #[test]
    fn count_and_item() {
        let mut h = History::new();
        let mut m = AbstractMessage::new("m");
        m.set_field(
            "xs",
            Value::Array(vec![Value::Int(5), Value::Int(6), Value::Int(7)]),
        );
        h.record("s", Direction::Received, m);
        let mut cache = TranslationCache::new();
        let mut ctx = MtlContext::new(&h, &mut cache);
        ctx.add_output("o", AbstractMessage::new("out"));
        MtlProgram::parse("o.n = count(s.xs)\no.second = item(s.xs, 1)")
            .unwrap()
            .execute(&mut ctx)
            .unwrap();
        let out = ctx.output("o").unwrap();
        assert_eq!(out.get("n").unwrap().as_int(), Some(3));
        assert_eq!(out.get("second").unwrap().as_int(), Some(6));
    }

    #[test]
    fn unknown_reference_and_function_errors() {
        let h = History::new();
        let mut cache = TranslationCache::new();
        let mut ctx = MtlContext::new(&h, &mut cache);
        ctx.add_output("o", AbstractMessage::new("out"));
        assert!(matches!(
            MtlProgram::parse("o.x = ghost.field")
                .unwrap()
                .execute(&mut ctx),
            Err(MtlLangError::UnknownReference { .. })
        ));
        assert!(matches!(
            MtlProgram::parse("o.x = frobnicate(1)")
                .unwrap()
                .execute(&mut ctx),
            Err(MtlLangError::UnknownFunction { .. })
        ));
        assert!(matches!(
            MtlProgram::parse("ghost.x = 1").unwrap().execute(&mut ctx),
            Err(MtlLangError::BadAssignment { .. })
        ));
    }

    #[test]
    fn foreach_restores_shadowed_local() {
        let mut h = History::new();
        let mut m = AbstractMessage::new("m");
        m.set_field("xs", Value::Array(vec![Value::Int(1)]));
        h.record("s", Direction::Received, m);
        let mut cache = TranslationCache::new();
        let mut ctx = MtlContext::new(&h, &mut cache);
        ctx.add_output("o", AbstractMessage::new("out"));
        MtlProgram::parse("let e = \"outer\"\nforeach e in s.xs { o.inner = e }\no.after = e")
            .unwrap()
            .execute(&mut ctx)
            .unwrap();
        let out = ctx.output("o").unwrap();
        assert_eq!(out.get("inner").unwrap().as_int(), Some(1));
        assert_eq!(out.get("after").unwrap().as_str(), Some("outer"));
    }

    #[test]
    fn foreach_over_non_array_fails() {
        let h = search_history();
        let mut cache = TranslationCache::new();
        let mut ctx = MtlContext::new(&h, &mut cache);
        let err = MtlProgram::parse("foreach e in m1.text { }")
            .unwrap()
            .execute(&mut ctx)
            .unwrap_err();
        assert!(matches!(err, MtlLangError::NotIterable { .. }));
    }

    #[test]
    fn whole_message_reference() {
        let h = search_history();
        let mut cache = TranslationCache::new();
        let mut ctx = MtlContext::new(&h, &mut cache);
        MtlProgram::parse("cache(\"req\", m1)")
            .unwrap()
            .execute(&mut ctx)
            .unwrap();
        let cached = ctx.cache().get("req").unwrap();
        assert_eq!(
            get_value_path(cached, &"text".parse().unwrap())
                .unwrap()
                .as_str(),
            Some("tree")
        );
    }

    #[test]
    fn append_to_missing_field_creates_array() {
        let h = History::new();
        let mut cache = TranslationCache::new();
        let mut ctx = MtlContext::new(&h, &mut cache);
        ctx.add_output("o", AbstractMessage::new("out"));
        MtlProgram::parse("append(o.xs, 1)\nappend(o.xs, 2)")
            .unwrap()
            .execute(&mut ctx)
            .unwrap();
        let out = ctx.output("o").unwrap();
        assert_eq!(
            out.get("xs").unwrap().as_array().unwrap(),
            &[Value::Int(1), Value::Int(2)]
        );
    }
}
