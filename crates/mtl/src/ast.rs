use crate::parser;
use crate::Result;
use starlink_message::FieldPath;
use std::fmt;

/// An assignment target: `slot.path` where `slot` names an output message
/// slot (the state at which the message will be sent, per the paper's
/// `S22.Msg → X` notation) or a local variable.
#[derive(Debug, Clone, PartialEq)]
pub struct LValue {
    /// The slot or local variable name.
    pub slot: String,
    /// The field path inside it; `None` assigns the whole local.
    pub path: Option<FieldPath>,
}

impl fmt::Display for LValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.path {
            Some(p) => write!(f, "{}.{p}", self.slot),
            None => f.write_str(&self.slot),
        }
    }
}

/// An MTL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// String literal.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// The `null` literal.
    Null,
    /// A reference `slot[.path]` into an output slot, local variable or
    /// history state.
    Ref {
        /// Slot / local / state identifier.
        slot: String,
        /// Optional field path within it.
        path: Option<FieldPath>,
    },
    /// A builtin call `name(args…)`.
    Call {
        /// Builtin name.
        name: String,
        /// Arguments, in order.
        args: Vec<Expr>,
    },
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Str(s) => write!(f, "{s:?}"),
            Expr::Int(i) => write!(f, "{i}"),
            Expr::Bool(b) => write!(f, "{b}"),
            Expr::Null => f.write_str("null"),
            Expr::Ref { slot, path } => match path {
                Some(p) => write!(f, "{slot}.{p}"),
                None => f.write_str(slot),
            },
            Expr::Call { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// One MTL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `lhs = expr`.
    Assign {
        /// Target.
        target: LValue,
        /// Source expression.
        value: Expr,
    },
    /// `let name = expr` — introduces/overwrites a local variable.
    Let {
        /// Variable name.
        name: String,
        /// Initialiser.
        value: Expr,
    },
    /// `cache(key, value)` — stores `value` under `key` in the
    /// translation cache (Fig. 9).
    Cache {
        /// Key expression (converted to text).
        key: Expr,
        /// Value expression.
        value: Expr,
    },
    /// `sethost(url)` — rebinds the service endpoint (Fig. 9's
    /// `SetHost(https://picasaweb.google.com)`).
    SetHost {
        /// The endpoint expression.
        url: Expr,
    },
    /// `append(target, value)` — pushes onto an array field.
    Append {
        /// Array target.
        target: LValue,
        /// Element expression.
        value: Expr,
    },
    /// `foreach var in expr { body }`.
    ForEach {
        /// Loop variable bound to each element.
        var: String,
        /// Array expression.
        iterable: Expr,
        /// Loop body.
        body: Vec<Statement>,
    },
}

/// A parsed MTL program: a sequence of statements executed in order at a
/// γ-transition / no-action state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MtlProgram {
    /// Top-level statements, in order.
    pub statements: Vec<Statement>,
}

impl MtlProgram {
    /// Parses MTL program text.
    ///
    /// # Errors
    ///
    /// [`crate::MtlLangError::Syntax`] on malformed input.
    pub fn parse(text: &str) -> Result<MtlProgram> {
        parser::parse(text)
    }

    /// An empty program (identity translation).
    pub fn empty() -> MtlProgram {
        MtlProgram::default()
    }

    /// Whether the program contains no statements.
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    /// Applies `f` to every reference (lvalues and ref-expressions) in the
    /// program — the hook the binding step uses to rewrite application
    /// field paths into protocol field paths (Fig. 8's translation from
    /// `S22.Msg → X` to `S22.SOAPRqst → X`).
    pub fn rewrite_refs<F>(&mut self, mut f: F)
    where
        F: FnMut(&mut String, &mut Option<FieldPath>),
    {
        fn walk_expr<F: FnMut(&mut String, &mut Option<FieldPath>)>(e: &mut Expr, f: &mut F) {
            match e {
                Expr::Ref { slot, path } => f(slot, path),
                Expr::Call { args, .. } => {
                    for a in args {
                        walk_expr(a, f);
                    }
                }
                _ => {}
            }
        }
        fn walk_stmt<F: FnMut(&mut String, &mut Option<FieldPath>)>(s: &mut Statement, f: &mut F) {
            match s {
                Statement::Assign { target, value } => {
                    let mut p = target.path.take();
                    f(&mut target.slot, &mut p);
                    target.path = p;
                    walk_expr(value, f);
                }
                Statement::Let { value, .. } => walk_expr(value, f),
                Statement::Cache { key, value } => {
                    walk_expr(key, f);
                    walk_expr(value, f);
                }
                Statement::SetHost { url } => walk_expr(url, f),
                Statement::Append { target, value } => {
                    let mut p = target.path.take();
                    f(&mut target.slot, &mut p);
                    target.path = p;
                    walk_expr(value, f);
                }
                Statement::ForEach { iterable, body, .. } => {
                    walk_expr(iterable, f);
                    for s in body {
                        walk_stmt(s, f);
                    }
                }
            }
        }
        for s in &mut self.statements {
            walk_stmt(s, &mut f);
        }
    }
}

impl fmt::Display for MtlProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn write_stmt(s: &Statement, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
            let pad = "  ".repeat(indent);
            match s {
                Statement::Assign { target, value } => writeln!(f, "{pad}{target} = {value}"),
                Statement::Let { name, value } => writeln!(f, "{pad}let {name} = {value}"),
                Statement::Cache { key, value } => writeln!(f, "{pad}cache({key}, {value})"),
                Statement::SetHost { url } => writeln!(f, "{pad}sethost({url})"),
                Statement::Append { target, value } => {
                    writeln!(f, "{pad}append({target}, {value})")
                }
                Statement::ForEach {
                    var,
                    iterable,
                    body,
                } => {
                    writeln!(f, "{pad}foreach {var} in {iterable} {{")?;
                    for s in body {
                        write_stmt(s, f, indent + 1)?;
                    }
                    writeln!(f, "{pad}}}")
                }
            }
        }
        for s in &self.statements {
            write_stmt(s, f, 0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_through_parse() {
        let src = "\
m2.q = m1.text
let p = newstruct()
cache(p.id, m1)
sethost(\"https://picasaweb.google.com\")
foreach e in m5.entries {
  append(m6.photos, e)
}
";
        let prog = MtlProgram::parse(src).unwrap();
        let printed = prog.to_string();
        let again = MtlProgram::parse(&printed).unwrap();
        assert_eq!(prog, again);
    }

    #[test]
    fn rewrite_refs_visits_everything() {
        let src = "m2.q = concat(m1.text, \"!\")\nforeach e in m5.list { append(m2.out, e.id) }";
        let mut prog = MtlProgram::parse(src).unwrap();
        let mut seen = Vec::new();
        prog.rewrite_refs(|slot, _path| {
            seen.push(slot.clone());
            if slot == "m1" {
                *slot = "S21".to_owned();
            }
        });
        assert!(seen.contains(&"m1".to_owned()));
        assert!(seen.contains(&"m2".to_owned()));
        assert!(seen.contains(&"e".to_owned()));
        assert!(prog.to_string().contains("S21.text"));
    }
}
