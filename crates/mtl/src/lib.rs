//! MTL — the Message Translation Logic of the Starlink framework.
//!
//! "When several protocols need to interoperate it is necessary to […]
//! describe the message translation logic (MTL), which defines how to
//! translate messages from one protocol to another. […] One key operator
//! of the MTL language is the assignment operation" (paper §4.1). MTL
//! programs run at the bi-colored (no-action) states of a merged
//! k-colored automaton and "typically consist of field transformation
//! where a field in the message to be composed is assigned a value from a
//! received field".
//!
//! The concrete syntax reproduces the paper's state-qualified assignments
//! (`S22.Msg → X = S21.Msg → X` is written `S22.X = S21.X`) and the
//! `cache`/`getcache` keywords of Fig. 9/10, and adds the `foreach` loop
//! the figures use informally ("For all `<entry>` …"):
//!
//! ```text
//! # Fig. 9: Flickr search → Picasa search
//! m3.q = m1.text
//! m3.max-results = m1.per_page
//! sethost("https://picasaweb.google.com")
//!
//! # Fig. 9, response: cache Picasa entries behind Flickr dummy ids
//! foreach e in m5.entries {
//!   let p = newstruct()
//!   p.id = genid()
//!   cache(p.id, e)
//!   append(m6.photos, p)
//! }
//! ```
//!
//! Statements: assignment, `let`, `cache(k, v)`, `sethost(url)`,
//! `append(target, value)`, `foreach v in expr { … }`. Expressions:
//! string/integer/boolean/null literals, state- or local-qualified field
//! paths, and the builtins `concat`, `tostring`, `toint`, `getcache`,
//! `newstruct`, `genid`, `count`, `item`, `default`.
//!
//! # Example
//!
//! ```
//! use starlink_mtl::{MtlProgram, MtlContext, TranslationCache};
//! use starlink_message::{AbstractMessage, Direction, History, Value};
//!
//! let program = MtlProgram::parse("m2.q = m1.text")?;
//!
//! let mut history = History::new();
//! let mut req = AbstractMessage::new("flickr.photos.search");
//! req.set_field("text", Value::from("tree"));
//! history.record("m1", Direction::Received, req);
//!
//! let mut cache = TranslationCache::new();
//! let mut ctx = MtlContext::new(&history, &mut cache);
//! ctx.add_output("m2", AbstractMessage::new("picasa.photos.search"));
//! program.execute(&mut ctx)?;
//!
//! assert_eq!(ctx.output("m2").unwrap().get("q").unwrap().as_str(), Some("tree"));
//! # Ok::<(), starlink_mtl::MtlLangError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod cache;
mod error;
mod interp;
mod parser;

pub use ast::{Expr, LValue, MtlProgram, Statement};
pub use cache::TranslationCache;
pub use error::MtlLangError;
pub use interp::MtlContext;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, MtlLangError>;
