use starlink_message::Value;
use std::collections::HashMap;

/// The translation cache of paper Fig. 9/10.
///
/// "The MTL provides a keyword operation `cache` that caches data values
/// for arbitrary data identifiers" — the Flickr-Picasa mediator stores
/// each Picasa `<entry>` under a generated dummy photo id at search time
/// and retrieves it with `getcache` when the client later calls
/// `getInfo`. The cache also hosts the deterministic id generator behind
/// the `genid()` builtin.
#[derive(Debug, Clone, Default)]
pub struct TranslationCache {
    entries: HashMap<String, Value>,
    next_id: u64,
}

impl TranslationCache {
    /// Creates an empty cache.
    pub fn new() -> TranslationCache {
        TranslationCache::default()
    }

    /// Stores `value` under `key`, replacing any previous entry.
    pub fn put(&mut self, key: impl Into<String>, value: Value) {
        self.entries.insert(key.into(), value);
    }

    /// Looks up a value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Produces the next dummy identifier (`genid()`): `"1000"`,
    /// `"1001"`, … — shaped like Flickr photo ids.
    pub fn generate_id(&mut self) -> String {
        let id = 1000 + self.next_id;
        self.next_id += 1;
        id.to_string()
    }

    /// Drops all entries and resets the id generator (new mediation
    /// session).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.next_id = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_overwrite() {
        let mut c = TranslationCache::new();
        assert!(c.is_empty());
        c.put("k", Value::Int(1));
        c.put("k", Value::Int(2));
        assert_eq!(c.get("k"), Some(&Value::Int(2)));
        assert_eq!(c.len(), 1);
        assert!(c.get("missing").is_none());
    }

    #[test]
    fn generated_ids_unique_and_deterministic() {
        let mut c = TranslationCache::new();
        assert_eq!(c.generate_id(), "1000");
        assert_eq!(c.generate_id(), "1001");
        c.clear();
        assert_eq!(c.generate_id(), "1000");
    }
}
