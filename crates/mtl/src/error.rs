use std::fmt;

/// Errors produced when parsing or executing MTL programs.
///
/// Named `MtlLangError` to avoid colliding with `starlink_mdl::MdlError`
/// in crates importing both.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MtlLangError {
    /// The program text is syntactically malformed.
    Syntax {
        /// Description of the problem.
        message: String,
        /// 1-based line number.
        line: usize,
    },
    /// A reference's first identifier is neither an output slot, a local
    /// variable, nor a state with recorded history.
    UnknownReference {
        /// The identifier.
        name: String,
    },
    /// A field path did not resolve inside the referenced message/value.
    PathResolution {
        /// The full reference text.
        reference: String,
        /// Underlying message-crate error text.
        cause: String,
    },
    /// An unknown builtin function was called.
    UnknownFunction {
        /// The function name.
        name: String,
    },
    /// A builtin was called with the wrong number or type of arguments.
    BadArguments {
        /// The function name.
        function: String,
        /// What went wrong.
        message: String,
    },
    /// `getcache` missed: no entry under the key.
    CacheMiss {
        /// The key that was looked up.
        key: String,
    },
    /// Assignment target cannot be written (e.g. unknown slot).
    BadAssignment {
        /// The left-hand side text.
        target: String,
        /// What went wrong.
        message: String,
    },
    /// `foreach` iterated over a non-array value.
    NotIterable {
        /// Description of the value found.
        found: String,
    },
}

impl fmt::Display for MtlLangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MtlLangError::Syntax { message, line } => {
                write!(f, "mtl syntax error on line {line}: {message}")
            }
            MtlLangError::UnknownReference { name } => {
                write!(f, "`{name}` is not an output slot, local, or history state")
            }
            MtlLangError::PathResolution { reference, cause } => {
                write!(f, "cannot resolve `{reference}`: {cause}")
            }
            MtlLangError::UnknownFunction { name } => {
                write!(f, "unknown mtl function `{name}`")
            }
            MtlLangError::BadArguments { function, message } => {
                write!(f, "bad arguments to `{function}`: {message}")
            }
            MtlLangError::CacheMiss { key } => write!(f, "cache miss for key `{key}`"),
            MtlLangError::BadAssignment { target, message } => {
                write!(f, "cannot assign `{target}`: {message}")
            }
            MtlLangError::NotIterable { found } => {
                write!(f, "foreach needs an array, found {found}")
            }
        }
    }
}

impl std::error::Error for MtlLangError {}
