use crate::ast::{Expr, LValue, MtlProgram, Statement};
use crate::error::MtlLangError;
use crate::Result;
use starlink_message::{FieldPath, PathSegment};

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Int(i64),
    Dot,
    Eq,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Newline,
}

struct Lexer<'a> {
    text: &'a str,
    pos: usize,
    line: usize,
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | ':' | '*')
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Lexer<'a> {
        Lexer {
            text,
            pos: 0,
            line: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> MtlLangError {
        MtlLangError::Syntax {
            message: message.into(),
            line: self.line,
        }
    }

    fn tokens(mut self) -> Result<Vec<(Token, usize)>> {
        let mut out = Vec::new();
        let bytes = self.text.as_bytes();
        while self.pos < bytes.len() {
            let c = self.text[self.pos..].chars().next().expect("pos < len");
            match c {
                '\n' => {
                    out.push((Token::Newline, self.line));
                    self.line += 1;
                    self.pos += 1;
                }
                ';' => {
                    out.push((Token::Newline, self.line));
                    self.pos += 1;
                }
                '#' => {
                    // Comment to end of line.
                    while self.pos < bytes.len() && bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                c if c.is_whitespace() => self.pos += c.len_utf8(),
                '.' => {
                    out.push((Token::Dot, self.line));
                    self.pos += 1;
                }
                '=' => {
                    out.push((Token::Eq, self.line));
                    self.pos += 1;
                }
                '(' => {
                    out.push((Token::LParen, self.line));
                    self.pos += 1;
                }
                ')' => {
                    out.push((Token::RParen, self.line));
                    self.pos += 1;
                }
                '{' => {
                    out.push((Token::LBrace, self.line));
                    self.pos += 1;
                }
                '}' => {
                    out.push((Token::RBrace, self.line));
                    self.pos += 1;
                }
                '[' => {
                    out.push((Token::LBracket, self.line));
                    self.pos += 1;
                }
                ']' => {
                    out.push((Token::RBracket, self.line));
                    self.pos += 1;
                }
                ',' => {
                    out.push((Token::Comma, self.line));
                    self.pos += 1;
                }
                '"' => {
                    self.pos += 1;
                    let mut s = String::new();
                    loop {
                        let rest = &self.text[self.pos..];
                        let mut chars = rest.chars();
                        match chars.next() {
                            None => return Err(self.error("unterminated string literal")),
                            Some('"') => {
                                self.pos += 1;
                                break;
                            }
                            Some('\\') => {
                                let esc =
                                    chars.next().ok_or_else(|| self.error("dangling escape"))?;
                                s.push(match esc {
                                    'n' => '\n',
                                    't' => '\t',
                                    '"' => '"',
                                    '\\' => '\\',
                                    other => {
                                        return Err(
                                            self.error(format!("unknown escape `\\{other}`"))
                                        )
                                    }
                                });
                                self.pos += 1 + esc.len_utf8();
                            }
                            Some('\n') => return Err(self.error("newline in string literal")),
                            Some(other) => {
                                s.push(other);
                                self.pos += other.len_utf8();
                            }
                        }
                    }
                    out.push((Token::Str(s), self.line));
                }
                c if c.is_ascii_digit() || is_ident_char(c) => {
                    // One char-correct scan covers identifiers, integer
                    // literals, and negative literals (`-` is an ident
                    // char because field names like `max-results` use it;
                    // a token that parses as i64 becomes an Int).
                    let start = self.pos;
                    while let Some(ch) = self.text[self.pos..].chars().next() {
                        if is_ident_char(ch) || ch.is_ascii_digit() {
                            self.pos += ch.len_utf8();
                        } else {
                            break;
                        }
                    }
                    let token_text = &self.text[start..self.pos];
                    let all_digits_or_sign = {
                        let t = token_text.strip_prefix('-').unwrap_or(token_text);
                        !t.is_empty() && t.bytes().all(|b| b.is_ascii_digit())
                    };
                    if all_digits_or_sign {
                        let n: i64 = token_text
                            .parse()
                            .map_err(|_| self.error("integer literal out of range"))?;
                        out.push((Token::Int(n), self.line));
                    } else {
                        out.push((Token::Ident(token_text.to_owned()), self.line));
                    }
                }
                other => return Err(self.error(format!("unexpected character `{other}`"))),
            }
        }
        Ok(out)
    }
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(1)
    }

    fn error(&self, message: impl Into<String>) -> MtlLangError {
        MtlLangError::Syntax {
            message: message.into(),
            line: self.line(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, token: &Token, what: &str) -> Result<()> {
        match self.next() {
            Some(t) if &t == token => Ok(()),
            Some(t) => Err(self.error(format!("expected {what}, found {t:?}"))),
            None => Err(self.error(format!("expected {what}, found end of input"))),
        }
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Some(Token::Newline)) {
            self.pos += 1;
        }
    }

    fn statements(&mut self, until_brace: bool) -> Result<Vec<Statement>> {
        let mut out = Vec::new();
        loop {
            self.skip_newlines();
            match self.peek() {
                None => {
                    if until_brace {
                        return Err(self.error("missing closing `}`"));
                    }
                    return Ok(out);
                }
                Some(Token::RBrace) if until_brace => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(Token::RBrace) => return Err(self.error("unmatched `}`")),
                _ => out.push(self.statement()?),
            }
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        let name = match self.next() {
            Some(Token::Ident(n)) => n,
            other => return Err(self.error(format!("expected a statement, found {other:?}"))),
        };
        match name.as_str() {
            "let" => {
                let var = match self.next() {
                    Some(Token::Ident(v)) => v,
                    other => {
                        return Err(self.error(format!("expected variable name, found {other:?}")))
                    }
                };
                self.expect(&Token::Eq, "`=`")?;
                let value = self.expr()?;
                Ok(Statement::Let { name: var, value })
            }
            "cache" => {
                self.expect(&Token::LParen, "`(`")?;
                let key = self.expr()?;
                self.expect(&Token::Comma, "`,`")?;
                let value = self.expr()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(Statement::Cache { key, value })
            }
            "sethost" | "SetHost" => {
                self.expect(&Token::LParen, "`(`")?;
                let url = self.expr()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(Statement::SetHost { url })
            }
            "append" => {
                self.expect(&Token::LParen, "`(`")?;
                let target = self.lvalue()?;
                self.expect(&Token::Comma, "`,`")?;
                let value = self.expr()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(Statement::Append { target, value })
            }
            "foreach" => {
                let var = match self.next() {
                    Some(Token::Ident(v)) => v,
                    other => {
                        return Err(self.error(format!("expected loop variable, found {other:?}")))
                    }
                };
                match self.next() {
                    Some(Token::Ident(kw)) if kw == "in" => {}
                    other => return Err(self.error(format!("expected `in`, found {other:?}"))),
                }
                let iterable = self.expr()?;
                self.expect(&Token::LBrace, "`{`")?;
                let body = self.statements(true)?;
                Ok(Statement::ForEach {
                    var,
                    iterable,
                    body,
                })
            }
            _ => {
                // Assignment: `<ref> = expr`.
                let target = self.lvalue_from(name)?;
                self.expect(&Token::Eq, "`=`")?;
                let value = self.expr()?;
                Ok(Statement::Assign { target, value })
            }
        }
    }

    fn lvalue(&mut self) -> Result<LValue> {
        let name = match self.next() {
            Some(Token::Ident(n)) => n,
            other => return Err(self.error(format!("expected an lvalue, found {other:?}"))),
        };
        self.lvalue_from(name)
    }

    fn lvalue_from(&mut self, slot: String) -> Result<LValue> {
        let path = self.path_tail()?;
        Ok(LValue { slot, path })
    }

    /// Parses `('.' ident | '[' int ']')*` into an optional FieldPath.
    fn path_tail(&mut self) -> Result<Option<FieldPath>> {
        let mut segments: Vec<PathSegment> = Vec::new();
        loop {
            match self.peek() {
                Some(Token::Dot) => {
                    self.pos += 1;
                    match self.next() {
                        Some(Token::Ident(seg)) => segments.push(PathSegment::Name(seg)),
                        Some(Token::Int(n)) => segments.push(PathSegment::Name(n.to_string())),
                        other => {
                            return Err(
                                self.error(format!("expected path segment, found {other:?}"))
                            )
                        }
                    }
                }
                Some(Token::LBracket) => {
                    self.pos += 1;
                    let idx = match self.next() {
                        Some(Token::Int(n)) if n >= 0 => n as usize,
                        other => return Err(self.error(format!("expected index, found {other:?}"))),
                    };
                    self.expect(&Token::RBracket, "`]`")?;
                    segments.push(PathSegment::Index(idx));
                }
                _ => break,
            }
        }
        Ok(FieldPath::from_segments(segments))
    }

    fn expr(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Token::Str(s)) => Ok(Expr::Str(s)),
            Some(Token::Int(n)) => Ok(Expr::Int(n)),
            Some(Token::Ident(name)) => match name.as_str() {
                "null" => Ok(Expr::Null),
                "true" => Ok(Expr::Bool(true)),
                "false" => Ok(Expr::Bool(false)),
                _ => {
                    if matches!(self.peek(), Some(Token::LParen)) {
                        self.pos += 1;
                        let mut args = Vec::new();
                        if !matches!(self.peek(), Some(Token::RParen)) {
                            loop {
                                args.push(self.expr()?);
                                match self.next() {
                                    Some(Token::Comma) => continue,
                                    Some(Token::RParen) => break,
                                    other => {
                                        return Err(self.error(format!(
                                            "expected `,` or `)`, found {other:?}"
                                        )))
                                    }
                                }
                            }
                        } else {
                            self.pos += 1;
                        }
                        Ok(Expr::Call { name, args })
                    } else {
                        let path = self.path_tail()?;
                        Ok(Expr::Ref { slot: name, path })
                    }
                }
            },
            other => Err(self.error(format!("expected an expression, found {other:?}"))),
        }
    }
}

pub(crate) fn parse(text: &str) -> Result<MtlProgram> {
    let tokens = Lexer::new(text).tokens()?;
    let mut parser = Parser { tokens, pos: 0 };
    let statements = parser.statements(false)?;
    Ok(MtlProgram { statements })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_fig8_assignments() {
        // `S22.SOAPRqst → X = S21.GIOPRqst → X` in our notation:
        let p = parse("S22.X = S21.X\nS22.Y = S21.Y").unwrap();
        assert_eq!(p.statements.len(), 2);
        match &p.statements[0] {
            Statement::Assign { target, value } => {
                assert_eq!(target.slot, "S22");
                assert_eq!(target.path.as_ref().unwrap().to_string(), "X");
                assert_eq!(
                    value,
                    &Expr::Ref {
                        slot: "S21".into(),
                        path: Some("X".parse().unwrap())
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_fig9_cache_and_sethost() {
        let src = r#"
sethost("https://picasaweb.google.com")
foreach e in m5.Body.entries {
  let p = newstruct()
  p.id = genid()
  cache(p.id, e)
  append(m6.Params.photos, p)
}
"#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.statements.len(), 2);
        match &prog.statements[1] {
            Statement::ForEach { var, body, .. } => {
                assert_eq!(var, "e");
                assert_eq!(body.len(), 4);
                assert!(matches!(body[3], Statement::Append { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_getcache_expression() {
        let prog = parse("m8.photo = getcache(m8.photo_id)").unwrap();
        match &prog.statements[0] {
            Statement::Assign { value, .. } => match value {
                Expr::Call { name, args } => {
                    assert_eq!(name, "getcache");
                    assert_eq!(args.len(), 1);
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dashes_in_field_names() {
        let prog = parse("m3.max-results = m1.per_page").unwrap();
        match &prog.statements[0] {
            Statement::Assign { target, .. } => {
                assert_eq!(target.path.as_ref().unwrap().to_string(), "max-results");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn indexed_paths() {
        let prog = parse("out.first = m1.entries[0].id").unwrap();
        match &prog.statements[0] {
            Statement::Assign { value, .. } => match value {
                Expr::Ref { path, .. } => {
                    assert_eq!(path.as_ref().unwrap().to_string(), "entries[0].id")
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn string_escapes() {
        let prog = parse(r#"x.a = "he said \"hi\"\n""#).unwrap();
        match &prog.statements[0] {
            Statement::Assign { value, .. } => {
                assert_eq!(value, &Expr::Str("he said \"hi\"\n".into()))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn semicolons_separate_statements() {
        let prog = parse("a.x = 1; a.y = 2").unwrap();
        assert_eq!(prog.statements.len(), 2);
    }

    #[test]
    fn comments_ignored() {
        let prog = parse("# header\na.x = 1 # trailing\n").unwrap();
        assert_eq!(prog.statements.len(), 1);
    }

    #[test]
    fn literals() {
        let prog = parse("a.s = \"str\"\na.i = 42\na.t = true\na.f = false\na.n = null").unwrap();
        let values: Vec<&Expr> = prog
            .statements
            .iter()
            .map(|s| match s {
                Statement::Assign { value, .. } => value,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(values[0], &Expr::Str("str".into()));
        assert_eq!(values[1], &Expr::Int(42));
        assert_eq!(values[2], &Expr::Bool(true));
        assert_eq!(values[3], &Expr::Bool(false));
        assert_eq!(values[4], &Expr::Null);
    }

    #[test]
    fn error_reporting_with_lines() {
        let cases: [(&str, usize); 8] = [
            ("a.x = ", 1),
            ("a.x 1", 1),
            ("\n\nforeach x y {}", 3),
            ("foreach e in xs {\n a.x = 1\n", 2),
            ("a.b = \"unterminated", 1),
            ("a.b = 99999999999999999999", 1),
            ("cache(1)", 1),
            ("}", 1),
        ];
        for (src, expect_line) in cases {
            match parse(src) {
                Err(MtlLangError::Syntax { line, .. }) => {
                    assert!(line >= expect_line.saturating_sub(1), "src: {src}")
                }
                other => panic!("expected syntax error for {src:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_program_ok() {
        assert!(parse("").unwrap().is_empty());
        assert!(parse("\n# only comments\n").unwrap().is_empty());
    }
}
