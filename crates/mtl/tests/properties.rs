//! Property-based tests for MTL: print∘parse is the identity on ASTs,
//! and generated assignment programs execute correctly.

use proptest::prelude::*;
use starlink_message::{AbstractMessage, Direction, History, Value};
use starlink_mtl::{MtlContext, MtlProgram, TranslationCache};

fn ident() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_]{0,8}"
}

proptest! {
    #[test]
    fn print_parse_identity_for_assignments(
        pairs in proptest::collection::vec((ident(), ident(), ident(), ident()), 1..8)
    ) {
        let mut text = String::new();
        for (ts, tf, ss, sf) in &pairs {
            text.push_str(&format!("{ts}.{tf} = {ss}.{sf}\n"));
        }
        let prog = MtlProgram::parse(&text).unwrap();
        let printed = prog.to_string();
        let again = MtlProgram::parse(&printed).unwrap();
        prop_assert_eq!(prog, again);
    }

    #[test]
    fn print_parse_identity_with_structures(
        var in ident(),
        list_state in ident(),
        list_field in ident(),
        key in "[a-zA-Z0-9 _.-]{0,12}",
    ) {
        let text = format!(
            "sethost(\"https://h\")\nlet {var} = newstruct()\ncache(\"{key}\", {var})\nforeach e in {list_state}.{list_field} {{\n  append({var}.items, e)\n}}\n"
        );
        let prog = MtlProgram::parse(&text).unwrap();
        let again = MtlProgram::parse(&prog.to_string()).unwrap();
        prop_assert_eq!(prog, again);
    }

    #[test]
    fn generated_assignments_copy_all_fields(
        fields in proptest::collection::vec((ident(), any::<i64>()), 1..10)
    ) {
        // Deduplicate labels (upsert semantics would skew counts).
        let mut seen = std::collections::HashSet::new();
        let fields: Vec<_> = fields
            .into_iter()
            .filter(|(l, _)| seen.insert(l.clone()))
            .collect();

        let mut src = AbstractMessage::new("src");
        let mut text = String::new();
        for (label, v) in &fields {
            src.set_field(label, Value::Int(*v));
            text.push_str(&format!("out.{label} = s1.{label}\n"));
        }
        let mut history = History::new();
        history.record("s1", Direction::Received, src);
        let program = MtlProgram::parse(&text).unwrap();
        let mut cache = TranslationCache::new();
        let mut ctx = MtlContext::new(&history, &mut cache);
        ctx.add_output("out", AbstractMessage::new("out"));
        program.execute(&mut ctx).unwrap();
        let out = ctx.take_output("out").unwrap();
        for (label, v) in &fields {
            prop_assert_eq!(out.get(label).unwrap().as_int(), Some(*v));
        }
    }

    #[test]
    fn cache_roundtrip_arbitrary_keys(key in "[a-zA-Z0-9 _.:-]{1,24}", v in any::<i64>()) {
        let history = History::new();
        let mut cache = TranslationCache::new();
        {
            let mut ctx = MtlContext::new(&history, &mut cache);
            ctx.add_output("o", AbstractMessage::new("o"));
            let program = MtlProgram::parse(&format!("cache(\"{key}\", {v})\no.x = getcache(\"{key}\")")).unwrap();
            program.execute(&mut ctx).unwrap();
            prop_assert_eq!(ctx.output("o").unwrap().get("x").unwrap().as_int(), Some(v));
        }
        prop_assert_eq!(cache.get(&key).unwrap().as_int(), Some(v));
    }

    #[test]
    fn parser_never_panics(s in "\\PC{0,96}") {
        let _ = MtlProgram::parse(&s);
    }

    #[test]
    fn foreach_visits_every_element(n in 0usize..20) {
        let mut msg = AbstractMessage::new("m");
        msg.set_field(
            "xs",
            Value::Array((0..n).map(|i| Value::Int(i as i64)).collect()),
        );
        let mut history = History::new();
        history.record("s", Direction::Received, msg);
        let program = MtlProgram::parse(
            "o.out = newarray()\nforeach x in s.xs { append(o.out, x) }",
        )
        .unwrap();
        let mut cache = TranslationCache::new();
        let mut ctx = MtlContext::new(&history, &mut cache);
        ctx.add_output("o", AbstractMessage::new("o"));
        program.execute(&mut ctx).unwrap();
        let out = ctx.take_output("o").unwrap();
        prop_assert_eq!(out.get("out").unwrap().as_array().unwrap().len(), n);
    }
}
