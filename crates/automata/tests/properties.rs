//! Property-based tests for automata: DSL round trips, merge invariants,
//! service-loop preservation.

use proptest::prelude::*;
use starlink_automata::merge::{intertwine, into_service_loop, template, MergeOptions};
use starlink_automata::{dsl, linear_usage_protocol, Action, Automaton};
use starlink_message::equiv::SemanticRegistry;
use starlink_message::AbstractMessage;

fn op_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,6}"
}

fn linear(names: &[String], color: u8, prefix: &str) -> Automaton {
    let ops: Vec<(AbstractMessage, AbstractMessage)> = names
        .iter()
        .map(|n| {
            (
                template(&format!("{prefix}.{n}"), &["a"]),
                template(&format!("{prefix}.{n}.reply"), &["r"]),
            )
        })
        .collect();
    linear_usage_protocol(&format!("A{prefix}"), color, &ops)
}

/// Distinct operation-name lists.
fn op_names() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(op_name(), 1..6).prop_map(|mut v| {
        v.sort();
        v.dedup();
        v
    })
}

proptest! {
    #[test]
    fn linear_protocols_always_validate(names in op_names(), color in 1u8..9) {
        let a = linear(&names, color, "x");
        prop_assert!(a.validate().is_ok());
        prop_assert_eq!(a.transitions().len(), names.len() * 2);
    }

    #[test]
    fn dsl_roundtrip_preserves_structure(names in op_names()) {
        let a = linear(&names, 1, "svc");
        let text = dsl::print(&a);
        let b = dsl::parse(&text).unwrap();
        prop_assert_eq!(a.states().len(), b.states().len());
        prop_assert_eq!(a.transitions().len(), b.transitions().len());
        for (x, y) in a.transitions().iter().zip(b.transitions()) {
            prop_assert_eq!(x.action.label(), y.action.label());
        }
    }

    #[test]
    fn identity_merge_intertwines_everything(names in op_names()) {
        // The same ops on both sides (identical names) always merge
        // strongly with every pair intertwined.
        let client = linear(&names, 1, "app");
        let service = linear(&names, 2, "app");
        let (merged, report) = intertwine(
            &client,
            &service,
            &SemanticRegistry::new(),
            &MergeOptions::default(),
        )
        .unwrap();
        prop_assert_eq!(report.intertwined_count(), names.len());
        prop_assert!(merged.validate().is_ok());
        // Structure: per op, 6 fresh states + the initial.
        prop_assert_eq!(merged.states().len(), names.len() * 6 + 1);
        prop_assert_eq!(merged.gamma_count(), names.len() * 2);
    }

    #[test]
    fn merge_alternates_directions(names in op_names()) {
        let client = linear(&names, 1, "app");
        let service = linear(&names, 2, "app");
        let (merged, _) = intertwine(
            &client,
            &service,
            &SemanticRegistry::new(),
            &MergeOptions::default(),
        )
        .unwrap();
        // Walk the single path: actions must cycle
        // receive, γ, send, receive, γ, send, …
        let mut current = merged.initial().unwrap().to_owned();
        let mut step = 0usize;
        loop {
            let outs: Vec<_> = merged.transitions_from(&current).collect();
            if outs.is_empty() {
                break;
            }
            prop_assert_eq!(outs.len(), 1);
            let expected = match step % 3 {
                0 => "receive",
                1 => "gamma",
                _ => "send",
            };
            let actual = match outs[0].action {
                Action::Receive(_) => "receive",
                Action::Gamma { .. } => "gamma",
                Action::Send(_) => "send",
            };
            prop_assert_eq!(actual, expected, "step {}", step);
            current = outs[0].to.clone();
            step += 1;
        }
        prop_assert_eq!(step, names.len() * 6);
    }

    #[test]
    fn service_loop_preserves_transitions(names in op_names()) {
        let client = linear(&names, 1, "app");
        let service = linear(&names, 2, "app");
        let (merged, _) = intertwine(
            &client,
            &service,
            &SemanticRegistry::new(),
            &MergeOptions::default(),
        )
        .unwrap();
        let looped = into_service_loop(&merged).unwrap();
        prop_assert_eq!(looped.transitions().len(), merged.transitions().len());
        // Spine states collapsed: one hub replaces (ops + 1) spine states.
        prop_assert_eq!(looped.states().len(), merged.states().len() - names.len());
        // The hub is initial, final, and the source of every op's entry.
        let hub = looped.initial().unwrap();
        prop_assert!(looped.is_final(hub));
        prop_assert_eq!(looped.transitions_from(hub).count(), names.len());
    }

    #[test]
    fn reachability_is_monotone(names in op_names()) {
        let a = linear(&names, 1, "x");
        let initial = a.initial().unwrap();
        let from_initial = a.reachable_from(initial);
        prop_assert_eq!(from_initial.len(), a.states().len());
        // Reachability from any state is a subset.
        for s in a.states() {
            prop_assert!(a.reachable_from(&s.id).len() <= from_initial.len());
        }
    }

    #[test]
    fn dot_is_wellformed(names in op_names()) {
        let a = linear(&names, 1, "x");
        let dot = a.to_dot();
        prop_assert!(dot.starts_with("digraph"));
        prop_assert_eq!(dot.matches("->").count(), a.transitions().len() + 1); // +1 for __start
    }
}
