//! A textual language for k-colored automata.
//!
//! The paper's case study writes automata "using the XML-based Starlink
//! language for k-colored automata" (§5.1). This reproduction defines an
//! equivalent *textual* syntax (documented deviation, DESIGN.md §6):
//!
//! ```text
//! automaton AFlickr color=1 {
//!   network color=1 transport=tcp mode=sync mdl=XMLRPC.mdl
//!   states s0 s1 s2 s3
//!   state m1 colors=1,2
//!   initial s0
//!   final s3
//!   s0 -> s1 : !flickr.photos.search(api_key, text, per_page?)
//!   s1 -> s2 : ?flickr.photos.search.reply(photos)
//!   s2 -> s3 : gamma { m3.q = m1.text }
//! }
//! ```
//!
//! * `!name(args)` / `?name(args)` declare send/receive transitions whose
//!   message template has the named mandatory fields (a `?` suffix marks
//!   a field optional),
//! * `gamma { … }` declares a γ-transition whose braces hold the MTL
//!   program verbatim (may span lines),
//! * `#` starts a comment.

use crate::automaton::Automaton;
use crate::error::AutomatonError;
use crate::transition::{InteractionMode, NetworkSemantics};
use crate::Result;
use starlink_message::{AbstractMessage, Field, Value};
use std::fmt::Write as _;

/// Parses one `automaton … { … }` block.
///
/// # Errors
///
/// [`AutomatonError::DslSyntax`] on malformed input and the usual
/// construction errors for inconsistent models.
pub fn parse(text: &str) -> Result<Automaton> {
    let mut lines = text.lines().enumerate().peekable();
    // Header.
    let (header_line_no, header) = loop {
        match lines.next() {
            Some((i, l)) => {
                let l = strip_comment(l).trim();
                if l.is_empty() {
                    continue;
                }
                break (i + 1, l.to_owned());
            }
            None => {
                return Err(AutomatonError::DslSyntax {
                    message: "empty input".into(),
                    line: 1,
                })
            }
        }
    };
    let header = header
        .strip_suffix('{')
        .ok_or_else(|| AutomatonError::DslSyntax {
            message: "expected `{` at end of automaton header".into(),
            line: header_line_no,
        })?
        .trim();
    let mut parts = header.split_whitespace();
    if parts.next() != Some("automaton") {
        return Err(AutomatonError::DslSyntax {
            message: "expected `automaton <name> color=<k> {`".into(),
            line: header_line_no,
        });
    }
    let name = parts.next().ok_or_else(|| AutomatonError::DslSyntax {
        message: "automaton needs a name".into(),
        line: header_line_no,
    })?;
    let mut color = 1u8;
    for p in parts {
        if let Some(c) = p.strip_prefix("color=") {
            color = c.parse().map_err(|_| AutomatonError::DslSyntax {
                message: format!("bad color `{c}`"),
                line: header_line_no,
            })?;
        }
    }
    let mut a = Automaton::new(name, color);

    // Body.
    let mut initial: Option<String> = None;
    let mut finals: Vec<String> = Vec::new();
    struct PendingTransition {
        from: String,
        to: String,
        action_text: String,
        line: usize,
    }
    let mut pending: Vec<PendingTransition> = Vec::new();

    while let Some((idx, raw)) = lines.next() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        if line == "}" {
            // Construct transitions now that all states exist.
            let initial = initial.ok_or_else(|| AutomatonError::DslSyntax {
                message: "automaton lacks an `initial` marker".into(),
                line: line_no,
            })?;
            a.set_initial(&initial)?;
            for f in &finals {
                a.add_final(f)?;
            }
            for t in pending {
                let action = parse_action(&t.action_text, t.line)?;
                match action {
                    ParsedAction::Send(m) => a.add_send(&t.from, &t.to, m)?,
                    ParsedAction::Receive(m) => a.add_receive(&t.from, &t.to, m)?,
                    ParsedAction::Gamma(mtl) => a.add_gamma(&t.from, &t.to, mtl)?,
                }
            }
            a.validate()?;
            return Ok(a);
        }
        if let Some(rest) = line.strip_prefix("states ") {
            for s in rest.split_whitespace() {
                a.add_state(s);
            }
        } else if let Some(rest) = line.strip_prefix("state ") {
            let mut ps = rest.split_whitespace();
            let id = ps.next().ok_or_else(|| AutomatonError::DslSyntax {
                message: "state needs an id".into(),
                line: line_no,
            })?;
            let mut colors = vec![color];
            for p in ps {
                if let Some(cs) = p.strip_prefix("colors=") {
                    colors = cs
                        .split(',')
                        .map(|c| {
                            c.parse::<u8>().map_err(|_| AutomatonError::DslSyntax {
                                message: format!("bad color `{c}`"),
                                line: line_no,
                            })
                        })
                        .collect::<Result<Vec<u8>>>()?;
                }
            }
            a.add_colored_state(id, colors);
        } else if let Some(rest) = line.strip_prefix("initial ") {
            initial = Some(rest.trim().to_owned());
        } else if let Some(rest) = line.strip_prefix("final ") {
            finals.extend(rest.split_whitespace().map(str::to_owned));
        } else if let Some(rest) = line.strip_prefix("network ") {
            let mut net_color = color;
            let mut transport = "tcp".to_owned();
            let mut mode = InteractionMode::Sync;
            let mut mdl = String::new();
            let mut multicast = false;
            for p in rest.split_whitespace() {
                if let Some(v) = p.strip_prefix("color=") {
                    net_color = v.parse().map_err(|_| AutomatonError::DslSyntax {
                        message: format!("bad color `{v}`"),
                        line: line_no,
                    })?;
                } else if let Some(v) = p.strip_prefix("transport=") {
                    transport = v.to_owned();
                } else if let Some(v) = p.strip_prefix("mode=") {
                    mode = match v {
                        "sync" => InteractionMode::Sync,
                        "async" => InteractionMode::Async,
                        other => {
                            return Err(AutomatonError::DslSyntax {
                                message: format!("bad mode `{other}`"),
                                line: line_no,
                            })
                        }
                    };
                } else if let Some(v) = p.strip_prefix("mdl=") {
                    mdl = v.to_owned();
                } else if p == "multicast" {
                    multicast = true;
                }
            }
            a.set_network(
                net_color,
                NetworkSemantics {
                    transport,
                    mode,
                    mdl,
                    multicast,
                },
            );
        } else if line.contains("->") {
            // `from -> to : action` — the action's gamma braces may span
            // multiple lines; gather until balanced.
            let mut full = line.clone();
            while brace_depth(&full) > 0 {
                match lines.next() {
                    Some((_, more)) => {
                        full.push('\n');
                        full.push_str(strip_comment(more));
                    }
                    None => {
                        return Err(AutomatonError::DslSyntax {
                            message: "unterminated `gamma {` block".into(),
                            line: line_no,
                        })
                    }
                }
            }
            let (endpoints, action_text) =
                full.split_once(':')
                    .ok_or_else(|| AutomatonError::DslSyntax {
                        message: "transition needs `from -> to : action`".into(),
                        line: line_no,
                    })?;
            let (from, to) =
                endpoints
                    .split_once("->")
                    .ok_or_else(|| AutomatonError::DslSyntax {
                        message: "transition needs `from -> to`".into(),
                        line: line_no,
                    })?;
            pending.push(PendingTransition {
                from: from.trim().to_owned(),
                to: to.trim().to_owned(),
                action_text: action_text.trim().to_owned(),
                line: line_no,
            });
        } else {
            return Err(AutomatonError::DslSyntax {
                message: format!("unrecognised line `{line}`"),
                line: line_no,
            });
        }
    }
    Err(AutomatonError::DslSyntax {
        message: "missing closing `}`".into(),
        line: text.lines().count(),
    })
}

enum ParsedAction {
    Send(AbstractMessage),
    Receive(AbstractMessage),
    Gamma(String),
}

fn parse_action(text: &str, line: usize) -> Result<ParsedAction> {
    if let Some(rest) = text.strip_prefix("gamma") {
        let rest = rest.trim();
        let mtl = if rest.is_empty() {
            String::new()
        } else {
            let inner = rest
                .strip_prefix('{')
                .and_then(|s| s.strip_suffix('}'))
                .ok_or_else(|| AutomatonError::DslSyntax {
                    message: "gamma body must be wrapped in `{ … }`".into(),
                    line,
                })?;
            inner.trim().to_owned()
        };
        return Ok(ParsedAction::Gamma(mtl));
    }
    let (direction, rest) = match text.chars().next() {
        Some('!') => (true, &text[1..]),
        Some('?') => (false, &text[1..]),
        _ => {
            return Err(AutomatonError::DslSyntax {
                message: format!("action must start with `!`, `?` or `gamma`: `{text}`"),
                line,
            })
        }
    };
    let (name, args) = match rest.find('(') {
        Some(i) => {
            let name = &rest[..i];
            let close = rest.rfind(')').ok_or_else(|| AutomatonError::DslSyntax {
                message: "unclosed argument list".into(),
                line,
            })?;
            (name, &rest[i + 1..close])
        }
        None => (rest, ""),
    };
    let mut msg = AbstractMessage::new(name.trim());
    for arg in args.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match arg.strip_suffix('?') {
            Some(opt) => msg.push_field(Field::optional(opt.trim(), Value::Null)),
            None => msg.push_field(Field::new(arg, Value::Null)),
        }
    }
    Ok(if direction {
        ParsedAction::Send(msg)
    } else {
        ParsedAction::Receive(msg)
    })
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn brace_depth(text: &str) -> i32 {
    let mut depth = 0;
    for c in text.chars() {
        match c {
            '{' => depth += 1,
            '}' => depth -= 1,
            _ => {}
        }
    }
    depth
}

/// Serialises an automaton back to the DSL text.
pub fn print(a: &Automaton) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "automaton {} color={} {{", a.name(), a.color());
    for color in collect_colors(a) {
        if let Some(n) = a.network(color) {
            let _ = writeln!(
                out,
                "  network color={color} transport={} mode={} mdl={}{}",
                n.transport,
                match n.mode {
                    InteractionMode::Sync => "sync",
                    InteractionMode::Async => "async",
                },
                n.mdl,
                if n.multicast { " multicast" } else { "" }
            );
        }
    }
    for s in a.states() {
        if s.colors == vec![a.color()] {
            let _ = writeln!(out, "  states {}", s.id);
        } else {
            let colors: Vec<String> = s.colors.iter().map(u8::to_string).collect();
            let _ = writeln!(out, "  state {} colors={}", s.id, colors.join(","));
        }
    }
    if let Some(init) = a.initial() {
        let _ = writeln!(out, "  initial {init}");
    }
    for f in a.finals() {
        let _ = writeln!(out, "  final {f}");
    }
    for t in a.transitions() {
        match &t.action {
            crate::transition::Action::Gamma { mtl } => {
                if mtl.is_empty() {
                    let _ = writeln!(out, "  {} -> {} : gamma", t.from, t.to);
                } else {
                    let _ = writeln!(
                        out,
                        "  {} -> {} : gamma {{ {} }}",
                        t.from,
                        t.to,
                        mtl.replace('\n', "\n    ")
                    );
                }
            }
            action => {
                let msg = action.message().expect("non-gamma carries a message");
                let args: Vec<String> = msg
                    .fields()
                    .iter()
                    .map(|f| {
                        if f.is_mandatory() {
                            f.label().to_owned()
                        } else {
                            format!("{}?", f.label())
                        }
                    })
                    .collect();
                let prefix = match action {
                    crate::transition::Action::Send(_) => '!',
                    _ => '?',
                };
                let _ = writeln!(
                    out,
                    "  {} -> {} : {prefix}{}({})",
                    t.from,
                    t.to,
                    msg.name(),
                    args.join(", ")
                );
            }
        }
    }
    out.push_str("}\n");
    out
}

fn collect_colors(a: &Automaton) -> Vec<u8> {
    let mut colors: Vec<u8> = a.states().iter().flat_map(|s| s.colors.clone()).collect();
    colors.sort_unstable();
    colors.dedup();
    colors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transition::Action;

    const SAMPLE: &str = "\
# Flickr client usage protocol
automaton AFlickr color=1 {
  network color=1 transport=tcp mode=sync mdl=XMLRPC.mdl
  states s0 s1 s2 s3 s4
  state b1 colors=1,2
  initial s0
  final s4
  s0 -> s1 : !flickr.photos.search(api_key, text, per_page?)
  s1 -> s2 : ?flickr.photos.search.reply(photos)
  s2 -> s3 : !flickr.photos.getInfo(photo_id)
  s3 -> b1 : ?flickr.photos.getInfo.reply(photo)
  b1 -> s4 : gamma {
    s4.q = s1.text
    s4.max-results = s1.per_page
  }
}";

    #[test]
    fn parses_sample() {
        let a = parse(SAMPLE).unwrap();
        assert_eq!(a.name(), "AFlickr");
        assert_eq!(a.color(), 1);
        assert_eq!(a.states().len(), 6);
        assert_eq!(a.transitions().len(), 5);
        assert_eq!(a.initial(), Some("s0"));
        assert!(a.is_final("s4"));
        assert_eq!(a.network(1).unwrap().mdl, "XMLRPC.mdl");
        // Optional field survives.
        let t0 = &a.transitions()[0];
        let msg = t0.action.message().unwrap();
        assert!(!msg.field("per_page").unwrap().is_mandatory());
        // Multi-line gamma preserved.
        match &a.transitions()[4].action {
            Action::Gamma { mtl } => {
                assert!(mtl.contains("s4.q = s1.text"));
                assert!(mtl.contains("max-results"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Bi-colored state parsed.
        assert!(a.state("b1").unwrap().is_bicolored());
    }

    #[test]
    fn roundtrip_print_parse() {
        let a = parse(SAMPLE).unwrap();
        let text = print(&a);
        let b = parse(&text).unwrap();
        assert_eq!(a.states().len(), b.states().len());
        assert_eq!(a.transitions().len(), b.transitions().len());
        assert_eq!(a.initial(), b.initial());
        for (x, y) in a.transitions().iter().zip(b.transitions()) {
            assert_eq!(x.action.label(), y.action.label());
            assert_eq!(x.from, y.from);
            assert_eq!(x.to, y.to);
        }
    }

    #[test]
    fn syntax_errors_carry_lines() {
        let bad = "automaton X color=1 {\n  bogus line here\n}";
        match parse(bad) {
            Err(AutomatonError::DslSyntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_brace_and_header() {
        assert!(matches!(
            parse("automaton X color=1 {\n initial s0\n"),
            Err(AutomatonError::DslSyntax { .. })
        ));
        assert!(matches!(
            parse("not-an-automaton {\n}"),
            Err(AutomatonError::DslSyntax { .. })
        ));
        assert!(matches!(parse(""), Err(AutomatonError::DslSyntax { .. })));
    }

    #[test]
    fn rejects_unknown_transition_state() {
        let bad =
            "automaton X color=1 {\n  states s0\n  initial s0\n  final s0\n  s0 -> s9 : !m\n}";
        assert!(matches!(
            parse(bad),
            Err(AutomatonError::UnknownState { .. })
        ));
    }

    #[test]
    fn gamma_without_body() {
        let text = "automaton X color=1 {\n  states s0 s1\n  initial s0\n  final s1\n  s0 -> s1 : gamma\n}";
        let a = parse(text).unwrap();
        assert!(a.transitions()[0].action.is_gamma());
    }

    #[test]
    fn validation_runs_on_parse() {
        let unreachable = "automaton X color=1 {\n  states s0 s1 s2\n  initial s0\n  final s1\n  s0 -> s1 : !m\n}";
        assert!(matches!(
            parse(unreachable),
            Err(AutomatonError::UnreachableState { .. })
        ));
    }
}
