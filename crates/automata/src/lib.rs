//! k-colored automata for the Starlink interoperability framework.
//!
//! Paper §3 models both *API usage protocols* (application behaviour) and
//! *middleware protocols* as automata whose transitions send (`!m`) or
//! receive (`?m`) abstract messages. Two such automata, each painted with
//! a color `k`, can be **merged** (`A¹ ⊕ A²`, Def. 7/8) into a k-colored
//! automaton whose **γ-transitions** jump between colors while applying
//! data transformations — the model a Starlink mediator executes.
//!
//! This crate provides:
//!
//! * [`Automaton`] — states, send/receive/γ transitions, initial/final
//!   state sets, per-color network semantics (Fig. 4),
//! * validation and reachability analysis,
//! * the **intertwining** analysis of Def. 5 and the automatic merge
//!   construction ([`merge::intertwine`]) with strong/weak classification
//!   (§3.3) — the paper's §6 names automatic merge generation as emerging
//!   work; this reproduction implements it for the sequential
//!   request/response protocols the case study uses,
//! * a [`MergeBuilder`](merge::MergeBuilder) for hand-constructed merges
//!   (the paper's primary workflow),
//! * a textual DSL ([`dsl`]) standing in for the paper's XML-based
//!   automaton language, plus DOT export for visualisation.
//!
//! # Example
//!
//! ```
//! use starlink_automata::{Automaton, Action};
//! use starlink_message::AbstractMessage;
//!
//! let mut a = Automaton::new("AddClient", 1);
//! a.add_state("A1");
//! a.add_state("A2");
//! a.set_initial("A1")?;
//! a.add_final("A2")?;
//! a.add_send("A1", "A2", AbstractMessage::new("Add"))?;
//! a.validate()?;
//! assert_eq!(a.transitions_from("A1").count(), 1);
//! # Ok::<(), starlink_automata::AutomatonError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod automaton;
pub mod dsl;
mod error;
pub mod merge;
mod transition;

pub use automaton::{linear_usage_protocol, Automaton, State};
pub use error::AutomatonError;
pub use merge::{MergeClass, MergeReport};
pub use transition::{Action, InteractionMode, NetworkSemantics, Transition};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, AutomatonError>;
