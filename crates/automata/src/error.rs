use std::fmt;

/// Errors produced when building, validating or merging automata.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AutomatonError {
    /// A transition or marker references a state that does not exist.
    UnknownState {
        /// The automaton involved.
        automaton: String,
        /// The missing state id.
        state: String,
    },
    /// The automaton has no initial state.
    NoInitialState {
        /// The automaton involved.
        automaton: String,
    },
    /// The automaton has no final (accepting) state.
    NoFinalState {
        /// The automaton involved.
        automaton: String,
    },
    /// A state can never be reached from the initial state.
    UnreachableState {
        /// The automaton involved.
        automaton: String,
        /// The unreachable state id.
        state: String,
    },
    /// No final state is reachable from the initial state.
    NoPathToFinal {
        /// The automaton involved.
        automaton: String,
    },
    /// A state id was declared twice.
    DuplicateState {
        /// The automaton involved.
        automaton: String,
        /// The duplicated state id.
        state: String,
    },
    /// A state's outgoing transitions mix action kinds (send vs receive
    /// vs γ). The engine classifies each state as receiving, sending or
    /// no-action from its outgoing transitions (paper §4.2), so a mixed
    /// state is ambiguous and cannot be executed. Multiple *receive*
    /// transitions from one state stay legal (a receiving state with
    /// alternatives).
    MixedActionKinds {
        /// The automaton involved.
        automaton: String,
        /// The offending state id.
        state: String,
        /// Labels of the conflicting transitions.
        labels: Vec<String>,
    },
    /// Two automata could not be merged.
    NotMergeable {
        /// Human-readable reason, naming the operation that failed to
        /// intertwine or be satisfied from history.
        reason: String,
    },
    /// The automaton DSL text was malformed.
    DslSyntax {
        /// Description of the problem.
        message: String,
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for AutomatonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutomatonError::UnknownState { automaton, state } => {
                write!(f, "automaton `{automaton}` has no state `{state}`")
            }
            AutomatonError::NoInitialState { automaton } => {
                write!(f, "automaton `{automaton}` has no initial state")
            }
            AutomatonError::NoFinalState { automaton } => {
                write!(f, "automaton `{automaton}` has no final state")
            }
            AutomatonError::UnreachableState { automaton, state } => {
                write!(f, "state `{state}` of `{automaton}` is unreachable")
            }
            AutomatonError::NoPathToFinal { automaton } => {
                write!(f, "no final state of `{automaton}` is reachable")
            }
            AutomatonError::DuplicateState { automaton, state } => {
                write!(f, "state `{state}` declared twice in `{automaton}`")
            }
            AutomatonError::MixedActionKinds {
                automaton,
                state,
                labels,
            } => {
                write!(
                    f,
                    "state `{state}` of `{automaton}` mixes action kinds: {}",
                    labels.join(", ")
                )
            }
            AutomatonError::NotMergeable { reason } => {
                write!(f, "automata are not mergeable: {reason}")
            }
            AutomatonError::DslSyntax { message, line } => {
                write!(f, "automaton dsl syntax error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for AutomatonError {}
