//! Merging API usage protocols: the `⊕` operator of paper Def. 7/8.
//!
//! A mediator between applications A¹ and A² executes the *merged*
//! automaton `A¹ ⊕ A²`: a k-colored automaton that alternates between the
//! client-facing color (1) and the service-facing color (2), crossing via
//! **γ-transitions** at bi-colored states where MTL translations run.
//!
//! Two construction paths are provided:
//!
//! * [`MergeBuilder`] — the paper's primary workflow ("currently Starlink
//!   developers construct the merged automata", §6): the developer states
//!   which operations intertwine and supplies the translation logic.
//! * [`intertwine`] — automatic construction for sequential
//!   request/response protocols, implementing the intertwining operator of
//!   Def. 5 driven by a [`SemanticRegistry`]: operations whose requests
//!   are semantically equivalent (over the message history `⇒`) are
//!   intertwined; client operations with no counterpart are answered
//!   locally from history when their reply is derivable (the Flickr
//!   `getInfo` case); service operations the client never performs are
//!   auto-invoked when their requests are derivable from history.
//!
//! The result is classified **strongly** or **weakly** merged per §3.3: a
//! merge stays strong while every non-intertwined client operation's
//! reply is semantically equivalent to replies already received from the
//! service; otherwise it is weak (the mediator must answer with
//! incomplete data).

use crate::automaton::Automaton;
use crate::error::AutomatonError;
use crate::transition::Action;
use crate::Result;
use starlink_message::equiv::SemanticRegistry;
use starlink_message::{AbstractMessage, Field};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Strong/weak classification of a merged automaton (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeClass {
    /// Every non-intertwined client operation's reply is semantically
    /// equivalent to data already received from the service.
    Strong,
    /// At least one non-intertwined reply cannot be fully derived from
    /// service data; interoperation proceeds with degraded answers.
    Weak,
}

/// Where in the intertwining pattern a γ-transition sits. Used to key
/// custom MTL overrides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GammaKind {
    /// Client request → service request translation.
    Request,
    /// Service reply → client reply translation.
    Reply,
    /// Local answer: client reply derived from history, no service call.
    Local,
}

/// How one client operation was resolved by the merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpResolution {
    /// Intertwined with the named service operation.
    Intertwined {
        /// Client request message name.
        client_op: String,
        /// Service request message name.
        service_op: String,
    },
    /// Answered locally from history (extra/missing message mismatch).
    AnsweredFromHistory {
        /// Client request message name.
        client_op: String,
        /// Whether the reply was fully derivable (strong) or not (weak).
        derivable: bool,
    },
    /// A service operation auto-invoked by the mediator (one-to-many
    /// mismatch: the service needs it, the client never asks).
    AutoInvoked {
        /// Service request message name.
        service_op: String,
    },
}

/// The outcome of a merge: the automaton plus analysis metadata.
#[derive(Debug, Clone)]
pub struct MergeReport {
    /// Strong or weak classification.
    pub class: MergeClass,
    /// Resolution of every operation, in merge order.
    pub resolutions: Vec<OpResolution>,
}

impl MergeReport {
    /// Number of intertwined operation pairs.
    pub fn intertwined_count(&self) -> usize {
        self.resolutions
            .iter()
            .filter(|r| matches!(r, OpResolution::Intertwined { .. }))
            .count()
    }
}

/// Options controlling automatic merge construction.
#[derive(Debug, Clone, Default)]
pub struct MergeOptions {
    /// Custom MTL programs, keyed by `(client or service op name, kind)`.
    /// When absent, a default field-mapping program is generated from the
    /// semantic registry.
    pub mtl_overrides: HashMap<(String, GammaKind), String>,
}

impl MergeOptions {
    /// Registers a custom MTL program for a γ-transition.
    pub fn with_mtl(
        mut self,
        op: impl Into<String>,
        kind: GammaKind,
        mtl: impl Into<String>,
    ) -> MergeOptions {
        self.mtl_overrides.insert((op.into(), kind), mtl.into());
        self
    }
}

/// One `!req … ?rep` operation extracted from a linear usage protocol.
#[derive(Debug, Clone)]
struct Op {
    request: AbstractMessage,
    reply: AbstractMessage,
}

/// Extracts the operation sequence from a linear automaton
/// (`!op ?rv !op ?rv …`).
fn linear_ops(a: &Automaton) -> Result<Vec<Op>> {
    let initial = a.initial().ok_or_else(|| AutomatonError::NoInitialState {
        automaton: a.name().to_owned(),
    })?;
    let mut ops = Vec::new();
    let mut current = initial;
    loop {
        let outgoing: Vec<_> = a.transitions_from(current).collect();
        if outgoing.is_empty() {
            break;
        }
        if outgoing.len() > 1 {
            return Err(AutomatonError::NotMergeable {
                reason: format!(
                    "automatic merge requires sequential protocols; state `{current}` of `{}` branches (use MergeBuilder)",
                    a.name()
                ),
            });
        }
        let send = outgoing[0];
        let request = match &send.action {
            Action::Send(m) => m.clone(),
            other => {
                return Err(AutomatonError::NotMergeable {
                    reason: format!(
                        "expected a send at `{current}` of `{}`, found {}",
                        a.name(),
                        other.label()
                    ),
                })
            }
        };
        let mid = send.to.as_str();
        let next: Vec<_> = a.transitions_from(mid).collect();
        if next.len() != 1 {
            return Err(AutomatonError::NotMergeable {
                reason: format!(
                    "expected exactly one reply after `!{}` in `{}`",
                    request.name(),
                    a.name()
                ),
            });
        }
        let reply = match &next[0].action {
            Action::Receive(m) => m.clone(),
            other => {
                return Err(AutomatonError::NotMergeable {
                    reason: format!(
                        "expected a receive after `!{}` in `{}`, found {}",
                        request.name(),
                        a.name(),
                        other.label()
                    ),
                })
            }
        };
        ops.push(Op { request, reply });
        current = next[0].to.as_str();
    }
    Ok(ops)
}

/// Incrementally constructs a merged k-colored automaton using the
/// 6-state intertwining pattern of Fig. 3 and the local-answer pattern of
/// Fig. 10.
///
/// The client-facing color is the first automaton's, the service-facing
/// color the second's. MTL programs attached to γ-transitions use
/// state-qualified references (`m3.field = m1.field`), matching the
/// paper's `S22.Msg → X = S21.Msg → X` notation.
#[derive(Debug)]
pub struct MergeBuilder {
    merged: Automaton,
    client_color: u8,
    service_color: u8,
    current: String,
    next_id: usize,
    /// message name → merged state at which it is observed (for MTL
    /// generation and history lookups).
    observed: HashMap<String, String>,
    resolutions: Vec<OpResolution>,
    weak: bool,
}

impl MergeBuilder {
    /// Starts a merge of two colored automata.
    pub fn new(name: impl Into<String>, client_color: u8, service_color: u8) -> MergeBuilder {
        let mut merged = Automaton::new(name, client_color);
        let current = merged.add_state("m0");
        merged.set_initial("m0").expect("state m0 was just added");
        MergeBuilder {
            merged,
            client_color,
            service_color,
            current,
            next_id: 1,
            observed: HashMap::new(),
            resolutions: Vec::new(),
            weak: false,
        }
    }

    fn fresh(&mut self, colors: Vec<u8>) -> String {
        let id = format!("m{}", self.next_id);
        self.next_id += 1;
        self.merged.add_colored_state(id.clone(), colors);
        id
    }

    /// The merged state at which `message_name` was most recently
    /// observed, if any.
    pub fn observed_at(&self, message_name: &str) -> Option<&str> {
        self.observed.get(message_name).map(String::as_str)
    }

    /// Appends the full intertwining pattern for one operation pair:
    ///
    /// `?c_req → γ(mtl_request) → !s_req → ?s_rep → γ(mtl_reply) → !c_rep`
    ///
    /// # Errors
    ///
    /// Never fails on a well-formed builder; returns [`AutomatonError`]
    /// if internal state construction is violated.
    pub fn intertwined(
        &mut self,
        c_req: AbstractMessage,
        c_rep: AbstractMessage,
        s_req: AbstractMessage,
        s_rep: AbstractMessage,
        mtl_request: impl Into<String>,
        mtl_reply: impl Into<String>,
    ) -> Result<&mut MergeBuilder> {
        // Deterministic id scheme (relied on by `intertwine` for MTL
        // generation): a=+0 recv [cc,sc], b=+1 compose-request [sc],
        // c=+2 sent [sc], wait=+3 reply received [sc,cc],
        // compose=+4 compose-reply [cc], done=+5 [cc].
        let cc = self.client_color;
        let sc = self.service_color;
        let a = self.fresh(vec![cc, sc]);
        let b = self.fresh(vec![sc]);
        let c = self.fresh(vec![sc]);
        let wait = self.fresh(vec![sc, cc]);
        let compose = self.fresh(vec![cc]);
        let done = self.fresh(vec![cc]);
        self.observed.insert(c_req.name().to_owned(), a.clone());
        self.observed.insert(s_rep.name().to_owned(), wait.clone());
        self.resolutions.push(OpResolution::Intertwined {
            client_op: c_req.name().to_owned(),
            service_op: s_req.name().to_owned(),
        });
        let from = self.current.clone();
        self.merged.add_receive(&from, &a, c_req)?;
        self.merged.add_gamma(&a, &b, mtl_request)?;
        self.merged.add_send(&b, &c, s_req)?;
        self.merged.add_receive(&c, &wait, s_rep)?;
        self.merged.add_gamma(&wait, &compose, mtl_reply)?;
        self.merged.add_send(&compose, &done, c_rep)?;
        self.current = done;
        Ok(self)
    }

    /// Appends the local-answer pattern (extra/missing message mismatch,
    /// Fig. 10): `?c_req → γ(mtl) → !c_rep`, no service interaction.
    ///
    /// `derivable` states whether the reply is fully derivable from
    /// history (keeps the merge strong) or not (demotes it to weak).
    ///
    /// # Errors
    ///
    /// Never fails on a well-formed builder.
    pub fn local_answer(
        &mut self,
        c_req: AbstractMessage,
        c_rep: AbstractMessage,
        mtl: impl Into<String>,
        derivable: bool,
    ) -> Result<&mut MergeBuilder> {
        let cc = self.client_color;
        let recv = self.fresh(vec![cc]);
        let compose = self.fresh(vec![cc]);
        let done = self.fresh(vec![cc]);
        self.observed.insert(c_req.name().to_owned(), recv.clone());
        self.resolutions.push(OpResolution::AnsweredFromHistory {
            client_op: c_req.name().to_owned(),
            derivable,
        });
        if !derivable {
            self.weak = true;
        }
        let from = self.current.clone();
        self.merged.add_receive(&from, &recv, c_req)?;
        self.merged.add_gamma(&recv, &compose, mtl)?;
        self.merged.add_send(&compose, &done, c_rep)?;
        self.current = done;
        Ok(self)
    }

    /// Appends a mediator-initiated service invocation (one-to-many
    /// mismatch): `γ(mtl) → !s_req → ?s_rep → γ()`, returning to the
    /// client color without any client interaction.
    ///
    /// # Errors
    ///
    /// Never fails on a well-formed builder.
    pub fn auto_invoke(
        &mut self,
        s_req: AbstractMessage,
        s_rep: AbstractMessage,
        mtl_request: impl Into<String>,
    ) -> Result<&mut MergeBuilder> {
        let cc = self.client_color;
        let sc = self.service_color;
        // The γ target is where the service request is composed and sent
        // from: its *primary* color must be the service color (the engine
        // routes sends by a state's first color).
        let a = self.fresh(vec![sc, cc]);
        let b = self.fresh(vec![sc]);
        let c = self.fresh(vec![sc, cc]);
        let d = self.fresh(vec![cc]);
        self.resolutions.push(OpResolution::AutoInvoked {
            service_op: s_req.name().to_owned(),
        });
        let from = self.current.clone();
        self.merged.add_gamma(&from, &a, mtl_request)?;
        self.merged.add_send(&a, &b, s_req)?;
        self.merged.add_receive(&b, &c, s_rep.clone())?;
        self.observed.insert(s_rep.name().to_owned(), c.clone());
        self.merged.add_gamma(&c, &d, "")?;
        self.current = d;
        Ok(self)
    }

    /// Finishes the merge: marks the current state final and validates.
    ///
    /// # Errors
    ///
    /// Propagates [`Automaton::validate`] failures and rejects merges
    /// with no intertwined pair (Def. 7 requires one).
    pub fn finish(mut self) -> Result<(Automaton, MergeReport)> {
        let current = self.current.clone();
        self.merged.add_final(&current)?;
        if !self
            .resolutions
            .iter()
            .any(|r| matches!(r, OpResolution::Intertwined { .. }))
        {
            return Err(AutomatonError::NotMergeable {
                reason: "no operation pair could be intertwined (Def. 7)".into(),
            });
        }
        self.merged.validate()?;
        let class = if self.weak {
            MergeClass::Weak
        } else {
            MergeClass::Strong
        };
        Ok((
            self.merged,
            MergeReport {
                class,
                resolutions: self.resolutions,
            },
        ))
    }

    /// Access to the automaton under construction (for attaching network
    /// semantics before `finish`).
    pub fn automaton_mut(&mut self) -> &mut Automaton {
        &mut self.merged
    }
}

/// Generates the default MTL field-mapping program for a γ-transition:
/// for every mandatory field of `target` (to be composed at state
/// `target_state`), finds a semantically equivalent field among the
/// `sources` (message name → merged state where it was observed) and
/// emits `targetstate.field = sourcestate.sourcefield`.
pub fn default_mtl(
    reg: &SemanticRegistry,
    target: &AbstractMessage,
    target_state: &str,
    sources: &[(&AbstractMessage, &str)],
) -> String {
    let mut out = String::new();
    for field in target.mandatory_fields() {
        let mut found = None;
        for (src_msg, src_state) in sources {
            if let Some(src_field) = reg.find_equivalent(src_msg, field) {
                found = Some((src_field.label().to_owned(), (*src_state).to_owned()));
                break;
            }
        }
        if let Some((src_label, src_state)) = found {
            let _ = writeln!(
                out,
                "{target_state}.{} = {src_state}.{src_label}",
                field.label()
            );
        }
    }
    out
}

/// Checks whether every mandatory field of `target` is derivable from the
/// given source messages (Def. 2 applied across a history).
fn derivable(
    reg: &SemanticRegistry,
    target: &AbstractMessage,
    sources: &[(&AbstractMessage, &str)],
) -> bool {
    target.mandatory_fields().all(|f| {
        sources
            .iter()
            .any(|(m, _)| reg.find_equivalent(m, f).is_some())
    })
}

/// Automatically merges two *linear* API usage protocols (the shape of
/// Fig. 2) into a k-colored mediator automaton (Fig. 3), resolving
/// ordering, extra/missing-message and one-to-many mismatches via the
/// semantic registry.
///
/// `client` is the usage protocol of the application whose requests the
/// mediator will receive; `service` is the protocol the mediator replays
/// against the real service.
///
/// # Errors
///
/// [`AutomatonError::NotMergeable`] when a client operation can neither
/// be intertwined nor answered from history, when a service operation is
/// skipped but not derivable, or when no pair intertwines at all
/// (Def. 7). Non-linear automata are rejected with a pointer to
/// [`MergeBuilder`].
pub fn intertwine(
    client: &Automaton,
    service: &Automaton,
    reg: &SemanticRegistry,
    options: &MergeOptions,
) -> Result<(Automaton, MergeReport)> {
    let client_ops = linear_ops(client)?;
    let service_ops = linear_ops(service)?;
    let mut builder = MergeBuilder::new(
        format!("{}+{}", client.name(), service.name()),
        client.color(),
        service.color(),
    );
    // Observed application messages (name → template) for derivability
    // analysis, alongside the merged state at which each lands.
    let mut history: Vec<(AbstractMessage, String)> = Vec::new();
    let mut s_idx = 0usize;

    for cop in &client_ops {
        // Find the next service op with an equivalent request, allowing
        // skips over service ops that are themselves derivable from
        // history (ordering / one-to-many mismatches).
        let mut matched: Option<usize> = None;
        for (j, sop) in service_ops.iter().enumerate().skip(s_idx) {
            if reg.message_names_equivalent(cop.request.name(), sop.request.name()) {
                matched = Some(j);
                break;
            }
        }
        match matched {
            Some(j) => {
                // Auto-invoke any skipped service ops first.
                for sop in &service_ops[s_idx..j] {
                    let sources: Vec<(&AbstractMessage, &str)> =
                        history.iter().map(|(m, s)| (m, s.as_str())).collect();
                    if !derivable(reg, &sop.request, &sources) {
                        return Err(AutomatonError::NotMergeable {
                            reason: format!(
                                "service operation `{}` is required before `{}` but its request is not derivable from history",
                                sop.request.name(),
                                cop.request.name()
                            ),
                        });
                    }
                    let mtl = options
                        .mtl_overrides
                        .get(&(sop.request.name().to_owned(), GammaKind::Request))
                        .cloned()
                        .unwrap_or_else(|| {
                            // Target state: the bi-colored γ target (next
                            // fresh id is current next_id).
                            let target_state = format!("m{}", builder.next_id);
                            default_mtl(reg, &sop.request, &target_state, &sources)
                        });
                    builder.auto_invoke(sop.request.clone(), sop.reply.clone(), mtl)?;
                    let state = builder
                        .observed_at(sop.reply.name())
                        .expect("auto_invoke records the reply")
                        .to_owned();
                    history.push((sop.reply.clone(), state));
                }
                s_idx = j + 1;
                let sop = &service_ops[j];

                // Request-side Def. 2 check: the service request must be
                // derivable from the client request plus history.
                let mut sources: Vec<(&AbstractMessage, &str)> = vec![(&cop.request, "")];
                sources.extend(history.iter().map(|(m, s)| (m, s.as_str())));
                if !derivable(reg, &sop.request, &sources) {
                    return Err(AutomatonError::NotMergeable {
                        reason: format!(
                            "request `{}` is not semantically equivalent to `{}` plus history (Def. 2)",
                            sop.request.name(),
                            cop.request.name()
                        ),
                    });
                }

                // γ target states for MTL generation: receive lands at
                // m{next}, request-γ target is m{next+1}; the reply wait
                // state is m{next+3}? — compute from the builder's
                // deterministic id scheme documented in `intertwined`:
                // a=+0, b=+1, c=+2, wait=+3, compose=+4, done=+5.
                let base = builder.next_id;
                let recv_state = format!("m{base}");
                let req_target = format!("m{}", base + 1);
                let wait_state = format!("m{}", base + 3);
                let rep_target = format!("m{}", base + 4);

                let mtl_request = options
                    .mtl_overrides
                    .get(&(cop.request.name().to_owned(), GammaKind::Request))
                    .cloned()
                    .unwrap_or_else(|| {
                        let mut srcs: Vec<(&AbstractMessage, &str)> =
                            vec![(&cop.request, recv_state.as_str())];
                        srcs.extend(history.iter().map(|(m, s)| (m, s.as_str())));
                        default_mtl(reg, &sop.request, &req_target, &srcs)
                    });
                let mtl_reply = options
                    .mtl_overrides
                    .get(&(cop.request.name().to_owned(), GammaKind::Reply))
                    .cloned()
                    .unwrap_or_else(|| {
                        let mut srcs: Vec<(&AbstractMessage, &str)> =
                            vec![(&sop.reply, wait_state.as_str())];
                        srcs.extend(history.iter().map(|(m, s)| (m, s.as_str())));
                        default_mtl(reg, &cop.reply, &rep_target, &srcs)
                    });
                builder.intertwined(
                    cop.request.clone(),
                    cop.reply.clone(),
                    sop.request.clone(),
                    sop.reply.clone(),
                    mtl_request,
                    mtl_reply,
                )?;
                history.push((cop.request.clone(), recv_state));
                history.push((sop.reply.clone(), wait_state));
            }
            None => {
                // Extra/missing-message mismatch: answer from history.
                let sources: Vec<(&AbstractMessage, &str)> =
                    history.iter().map(|(m, s)| (m, s.as_str())).collect();
                let recv_state = format!("m{}", builder.next_id);
                let compose_state = format!("m{}", builder.next_id + 1);
                let fully = derivable(reg, &cop.reply, &sources);
                let mtl = options
                    .mtl_overrides
                    .get(&(cop.request.name().to_owned(), GammaKind::Local))
                    .cloned()
                    .unwrap_or_else(|| {
                        let mut srcs: Vec<(&AbstractMessage, &str)> =
                            vec![(&cop.request, recv_state.as_str())];
                        srcs.extend(sources.iter().copied());
                        default_mtl(reg, &cop.reply, &compose_state, &srcs)
                    });
                builder.local_answer(cop.request.clone(), cop.reply.clone(), mtl, fully)?;
                history.push((cop.request.clone(), recv_state));
            }
        }
    }
    // Trailing service ops must be derivable, else the service protocol
    // cannot reach its final state (Def. 7).
    for sop in &service_ops[s_idx..] {
        let sources: Vec<(&AbstractMessage, &str)> =
            history.iter().map(|(m, s)| (m, s.as_str())).collect();
        if !derivable(reg, &sop.request, &sources) {
            return Err(AutomatonError::NotMergeable {
                reason: format!(
                    "service operation `{}` is never performed and not derivable from history",
                    sop.request.name()
                ),
            });
        }
        let target_state = format!("m{}", builder.next_id);
        let mtl = options
            .mtl_overrides
            .get(&(sop.request.name().to_owned(), GammaKind::Request))
            .cloned()
            .unwrap_or_else(|| default_mtl(reg, &sop.request, &target_state, &sources));
        builder.auto_invoke(sop.request.clone(), sop.reply.clone(), mtl)?;
        let state = builder
            .observed_at(sop.reply.name())
            .expect("auto_invoke records the reply")
            .to_owned();
        history.push((sop.reply.clone(), state));
    }
    builder.finish()
}

/// Folds a *linear* merged automaton (one traversal of the client's
/// session, Fig. 3) into a **service loop**: the states between operation
/// patterns — the initial state and every state reached after a reply is
/// sent to the client — collapse into a single hub, so the deployed
/// mediator serves operations in any order and any number of times. The
/// hub is the only accepting state.
///
/// MTL state references are unaffected: they name receive/compose/wait
/// states, never the spine states being folded.
///
/// # Errors
///
/// Construction errors if the input automaton is malformed.
pub fn into_service_loop(merged: &Automaton) -> Result<Automaton> {
    let initial = merged
        .initial()
        .ok_or_else(|| AutomatonError::NoInitialState {
            automaton: merged.name().to_owned(),
        })?
        .to_owned();
    // Spine = initial + targets of client-reply sends + finals.
    let mut spine: std::collections::HashSet<String> = std::collections::HashSet::new();
    spine.insert(initial.clone());
    for f in merged.finals() {
        spine.insert(f.to_owned());
    }
    for t in merged.transitions() {
        if let Action::Send(m) = &t.action {
            if m.name().ends_with(".reply") {
                spine.insert(t.to.clone());
            }
        }
    }
    let hub = initial;
    let fold = |id: &str| -> String {
        if spine.contains(id) {
            hub.clone()
        } else {
            id.to_owned()
        }
    };
    let mut out = Automaton::new(format!("{}-service", merged.name()), merged.color());
    for s in merged.states() {
        if !spine.contains(&s.id) {
            out.add_colored_state(s.id.clone(), s.colors.clone());
        }
    }
    out.add_colored_state(
        hub.clone(),
        merged
            .state(&hub)
            .map(|s| s.colors.clone())
            .unwrap_or_else(|| vec![merged.color()]),
    );
    out.set_initial(&hub)?;
    out.add_final(&hub)?;
    for t in merged.transitions() {
        out.add_transition(crate::transition::Transition {
            from: fold(&t.from),
            to: fold(&t.to),
            action: t.action.clone(),
            network: t.network.clone(),
        })?;
    }
    out.validate()?;
    Ok(out)
}

/// Convenience: a message template with the given mandatory field labels
/// (used when declaring usage protocols whose values are runtime data).
pub fn template(name: &str, fields: &[&str]) -> AbstractMessage {
    let mut m = AbstractMessage::new(name);
    for f in fields {
        m.push_field(Field::new(*f, starlink_message::Value::Null));
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::linear_usage_protocol;

    fn registry() -> SemanticRegistry {
        let mut reg = SemanticRegistry::new();
        reg.declare_message_concept("search", ["flickr.photos.search", "picasa.photos.search"]);
        reg.declare_message_concept(
            "comments",
            ["flickr.photos.comments.getList", "picasa.getComments"],
        );
        reg.declare_field_concept("keyword", ["text", "q"]);
        reg.declare_field_concept("limit", ["per_page", "max-results"]);
        reg.declare_field_concept("photos", ["photos", "entries"]);
        reg.declare_field_concept("photo-ref", ["photo_id", "entry_id"]);
        reg.declare_field_concept("comments", ["comments", "commentEntries"]);
        reg
    }

    fn flickr() -> Automaton {
        linear_usage_protocol(
            "AFlickr",
            1,
            &[
                (
                    template("flickr.photos.search", &["text", "per_page"]),
                    template("flickr.photos.search.reply", &["photos"]),
                ),
                (
                    template("flickr.photos.getInfo", &["photo_id"]),
                    template("flickr.photos.getInfo.reply", &["photos"]),
                ),
                (
                    template("flickr.photos.comments.getList", &["photo_id"]),
                    template("flickr.photos.comments.getList.reply", &["comments"]),
                ),
            ],
        )
    }

    fn picasa() -> Automaton {
        linear_usage_protocol(
            "APicasa",
            2,
            &[
                (
                    template("picasa.photos.search", &["q", "max-results"]),
                    template("picasa.photos.search.reply", &["entries"]),
                ),
                (
                    template("picasa.getComments", &["entry_id"]),
                    template("picasa.getComments.reply", &["commentEntries"]),
                ),
            ],
        )
    }

    #[test]
    fn case_study_merge_is_strong() {
        let (merged, report) =
            intertwine(&flickr(), &picasa(), &registry(), &MergeOptions::default()).unwrap();
        assert_eq!(report.class, MergeClass::Strong);
        assert_eq!(report.intertwined_count(), 2);
        assert!(report.resolutions.iter().any(|r| matches!(
            r,
            OpResolution::AnsweredFromHistory { client_op, derivable: true }
                if client_op == "flickr.photos.getInfo"
        )));
        merged.validate().unwrap();
        // Two intertwined ops → 4 bi-colored states; getInfo adds none.
        let bicolored = merged.states().iter().filter(|s| s.is_bicolored()).count();
        assert_eq!(bicolored, 4);
        assert_eq!(merged.gamma_count(), 5); // 2 per intertwined + 1 local
    }

    #[test]
    fn default_mtl_maps_equivalent_fields() {
        let reg = registry();
        let target = template("picasa.photos.search", &["q", "max-results"]);
        let source = template("flickr.photos.search", &["text", "per_page"]);
        let mtl = default_mtl(&reg, &target, "m2", &[(&source, "m1")]);
        assert!(mtl.contains("m2.q = m1.text"));
        assert!(mtl.contains("m2.max-results = m1.per_page"));
    }

    #[test]
    fn underivable_local_answer_demotes_to_weak() {
        let mut reg = registry();
        // getInfo's reply needs a field nothing provides.
        let client = linear_usage_protocol(
            "C",
            1,
            &[
                (
                    template("flickr.photos.search", &["text"]),
                    template("flickr.photos.search.reply", &["photos"]),
                ),
                (
                    template("flickr.photos.getInfo", &["photo_id"]),
                    template("flickr.photos.getInfo.reply", &["exif_data"]),
                ),
            ],
        );
        let service = linear_usage_protocol(
            "S",
            2,
            &[(
                template("picasa.photos.search", &["q"]),
                template("picasa.photos.search.reply", &["entries"]),
            )],
        );
        reg.declare_field_concept("keyword", ["text", "q"]);
        let (_, report) = intertwine(&client, &service, &reg, &MergeOptions::default()).unwrap();
        assert_eq!(report.class, MergeClass::Weak);
    }

    #[test]
    fn no_intertwined_pair_is_not_mergeable() {
        let reg = SemanticRegistry::new();
        let client = linear_usage_protocol(
            "C",
            1,
            &[(template("a.op", &[]), template("a.op.reply", &[]))],
        );
        let service = linear_usage_protocol(
            "S",
            2,
            &[(
                template("b.unrelated", &["zz"]),
                template("b.unrelated.reply", &[]),
            )],
        );
        let err = intertwine(&client, &service, &reg, &MergeOptions::default()).unwrap_err();
        assert!(matches!(err, AutomatonError::NotMergeable { .. }));
    }

    #[test]
    fn missing_request_fields_block_merge() {
        let mut reg = SemanticRegistry::new();
        reg.declare_message_concept("op", ["c.op", "s.op"]);
        // Service request needs `token`; client provides nothing like it.
        let client = linear_usage_protocol(
            "C",
            1,
            &[(template("c.op", &["x"]), template("c.op.reply", &[]))],
        );
        let service = linear_usage_protocol(
            "S",
            2,
            &[(template("s.op", &["token"]), template("s.op.reply", &[]))],
        );
        let err = intertwine(&client, &service, &reg, &MergeOptions::default()).unwrap_err();
        match err {
            AutomatonError::NotMergeable { reason } => {
                assert!(reason.contains("Def. 2"), "reason: {reason}")
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trailing_service_op_auto_invoked_when_derivable() {
        let mut reg = SemanticRegistry::new();
        reg.declare_message_concept("op", ["c.op", "s.op"]);
        reg.declare_field_concept("k", ["x", "y"]);
        reg.declare_field_concept("ack", ["done", "fin"]);
        let client = linear_usage_protocol(
            "C",
            1,
            &[(template("c.op", &["x"]), template("c.op.reply", &["r"]))],
        );
        let service = linear_usage_protocol(
            "S",
            2,
            &[
                (template("s.op", &["y"]), template("s.op.reply", &["r"])),
                // Trailing op derivable from history (`y` ≅ `x`).
                (
                    template("s.commit", &["y"]),
                    template("s.commit.reply", &["fin"]),
                ),
            ],
        );
        let (merged, report) =
            intertwine(&client, &service, &reg, &MergeOptions::default()).unwrap();
        assert!(report.resolutions.iter().any(
            |r| matches!(r, OpResolution::AutoInvoked { service_op } if service_op == "s.commit")
        ));
        merged.validate().unwrap();
    }

    #[test]
    fn mtl_overrides_take_precedence() {
        let options = MergeOptions::default().with_mtl(
            "flickr.photos.search",
            GammaKind::Request,
            "custom-program",
        );
        let (merged, _) = intertwine(&flickr(), &picasa(), &registry(), &options).unwrap();
        let has_custom = merged
            .transitions()
            .iter()
            .any(|t| matches!(&t.action, Action::Gamma { mtl } if mtl == "custom-program"));
        assert!(has_custom);
    }

    #[test]
    fn branching_automata_rejected() {
        let mut a = Automaton::new("B", 1);
        a.add_state("s0");
        a.add_state("s1");
        a.add_state("s2");
        a.set_initial("s0").unwrap();
        a.add_final("s1").unwrap();
        a.add_final("s2").unwrap();
        a.add_send("s0", "s1", AbstractMessage::new("x")).unwrap();
        a.add_send("s0", "s2", AbstractMessage::new("y")).unwrap();
        let err = intertwine(&a, &picasa(), &registry(), &MergeOptions::default()).unwrap_err();
        match err {
            AutomatonError::NotMergeable { reason } => {
                assert!(reason.contains("MergeBuilder"))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn builder_records_observations() {
        let mut b = MergeBuilder::new("M", 1, 2);
        b.intertwined(
            template("c.req", &[]),
            template("c.rep", &[]),
            template("s.req", &[]),
            template("s.rep", &[]),
            "",
            "",
        )
        .unwrap();
        assert!(b.observed_at("c.req").is_some());
        assert!(b.observed_at("s.rep").is_some());
        assert!(b.observed_at("zzz").is_none());
        let (merged, report) = b.finish().unwrap();
        assert_eq!(report.class, MergeClass::Strong);
        merged.validate().unwrap();
    }
}
