use starlink_message::AbstractMessage;
use std::fmt;

/// Whether messages on a colored automaton are exchanged synchronously on
/// one connection (RPC style) or asynchronously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InteractionMode {
    /// Request and response travel on the same connection, blocking
    /// (GIOP, SOAP-over-HTTP, XML-RPC — Fig. 4's `mode="sync"`).
    #[default]
    Sync,
    /// Fire-and-forget / independently delivered messages.
    Async,
}

/// Network semantics attached to a color of a k-colored automaton:
/// "a transition in the k-colored automata attaches network semantics to
/// describe the requirements of the network" (paper §4.2, Fig. 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkSemantics {
    /// Transport protocol name understood by the network engine
    /// (`"tcp"`, `"udp"`, `"memory"`).
    pub transport: String,
    /// Interaction mode.
    pub mode: InteractionMode,
    /// Name of the MDL spec describing this color's messages
    /// (`"GIOP.mdl"` in Fig. 4); resolved by the model registry.
    pub mdl: String,
    /// Whether requests are sent by multicast (service discovery
    /// protocols) rather than unicast.
    pub multicast: bool,
}

impl NetworkSemantics {
    /// Unicast, synchronous TCP semantics with the given MDL reference —
    /// the common RPC shape.
    pub fn tcp_sync(mdl: impl Into<String>) -> NetworkSemantics {
        NetworkSemantics {
            transport: "tcp".into(),
            mode: InteractionMode::Sync,
            mdl: mdl.into(),
            multicast: false,
        }
    }

    /// In-memory deterministic transport (testing).
    pub fn memory_sync(mdl: impl Into<String>) -> NetworkSemantics {
        NetworkSemantics {
            transport: "memory".into(),
            mode: InteractionMode::Sync,
            mdl: mdl.into(),
            multicast: false,
        }
    }
}

impl fmt::Display for NetworkSemantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transport_protocol=\"{}\" mode=\"{}\" mdl=\"{}\"{}",
            self.transport,
            match self.mode {
                InteractionMode::Sync => "sync",
                InteractionMode::Async => "async",
            },
            self.mdl,
            if self.multicast { " multicast" } else { "" }
        )
    }
}

/// The action performed by a transition.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// `!m` — send the message (invoke an operation).
    Send(AbstractMessage),
    /// `?m` — receive the message (an invocation reply, or an incoming
    /// request on the server/mediator side).
    Receive(AbstractMessage),
    /// A γ-transition between colors: no message crosses the network;
    /// the attached translation program (MTL text, interpreted by the
    /// runtime) maps data between semantically equivalent messages.
    Gamma {
        /// MTL program source executed when the transition fires.
        mtl: String,
    },
}

impl Action {
    /// The message template carried by a send/receive action.
    pub fn message(&self) -> Option<&AbstractMessage> {
        match self {
            Action::Send(m) | Action::Receive(m) => Some(m),
            Action::Gamma { .. } => None,
        }
    }

    /// The paper's notation: `!name`, `?name` or `γ`.
    pub fn label(&self) -> String {
        match self {
            Action::Send(m) => format!("!{}", m.name()),
            Action::Receive(m) => format!("?{}", m.name()),
            Action::Gamma { .. } => "γ".to_owned(),
        }
    }

    /// Whether this is a γ-transition.
    pub fn is_gamma(&self) -> bool {
        matches!(self, Action::Gamma { .. })
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A transition of a (possibly merged) automaton.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Source state id.
    pub from: String,
    /// Target state id.
    pub to: String,
    /// What happens when the transition fires.
    pub action: Action,
    /// Per-transition network override; when `None` the color's
    /// [`NetworkSemantics`] applies.
    pub network: Option<NetworkSemantics>,
}

impl Transition {
    /// Creates a transition with no network override.
    pub fn new(from: impl Into<String>, to: impl Into<String>, action: Action) -> Transition {
        Transition {
            from: from.into(),
            to: to.into(),
            action,
            network: None,
        }
    }
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} --{}--> {}", self.from, self.action, self.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_labels_match_paper_notation() {
        let send = Action::Send(AbstractMessage::new("flickr.photos.search"));
        let recv = Action::Receive(AbstractMessage::new("flickr.photos.search"));
        let gamma = Action::Gamma { mtl: String::new() };
        assert_eq!(send.label(), "!flickr.photos.search");
        assert_eq!(recv.label(), "?flickr.photos.search");
        assert_eq!(gamma.label(), "γ");
        assert!(gamma.is_gamma());
        assert!(!send.is_gamma());
    }

    #[test]
    fn network_semantics_display_matches_fig4() {
        let n = NetworkSemantics::tcp_sync("GIOP.mdl");
        assert_eq!(
            n.to_string(),
            "transport_protocol=\"tcp\" mode=\"sync\" mdl=\"GIOP.mdl\""
        );
    }

    #[test]
    fn transition_display() {
        let t = Transition::new(
            "A1",
            "A2",
            Action::Send(AbstractMessage::new("GIOPRequest")),
        );
        assert_eq!(t.to_string(), "A1 --!GIOPRequest--> A2");
    }

    #[test]
    fn message_accessor() {
        let m = AbstractMessage::new("x");
        assert_eq!(Action::Send(m.clone()).message(), Some(&m));
        assert_eq!(Action::Gamma { mtl: "".into() }.message(), None);
    }
}
