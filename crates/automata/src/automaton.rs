use crate::error::AutomatonError;
use crate::transition::{Action, NetworkSemantics, Transition};
use crate::Result;
use starlink_message::AbstractMessage;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::fmt::Write as _;

/// A state of a k-colored automaton.
///
/// In a merged automaton a state may carry **two** colors — the
/// bi-colored nodes of Fig. 3 where γ-transitions translate between the
/// two systems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    /// Unique id within the automaton (`s0`, `s1²`, …).
    pub id: String,
    /// The colors painting this state (one, or two for bi-colored).
    pub colors: Vec<u8>,
}

impl State {
    /// Whether the state belongs to the given color.
    pub fn has_color(&self, color: u8) -> bool {
        self.colors.contains(&color)
    }

    /// Whether the state is bi-colored (a γ-translation site).
    pub fn is_bicolored(&self) -> bool {
        self.colors.len() > 1
    }
}

/// An automaton in the sense of paper §3.1 (`AS = (Q, M, q0, F, Act, →)`),
/// extended with colors and γ-transitions so that the same type also
/// represents merged automata (Def. 8).
#[derive(Debug, Clone, PartialEq)]
pub struct Automaton {
    name: String,
    /// Default color painted on newly added states.
    color: u8,
    states: Vec<State>,
    initial: Option<String>,
    finals: BTreeSet<String>,
    transitions: Vec<Transition>,
    /// Network semantics per color (Fig. 4 annotations).
    network: HashMap<u8, NetworkSemantics>,
}

impl Automaton {
    /// Creates an empty automaton with the given name and color.
    pub fn new(name: impl Into<String>, color: u8) -> Automaton {
        Automaton {
            name: name.into(),
            color,
            states: Vec::new(),
            initial: None,
            finals: BTreeSet::new(),
            transitions: Vec::new(),
            network: HashMap::new(),
        }
    }

    /// The automaton's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The automaton's default color.
    pub fn color(&self) -> u8 {
        self.color
    }

    /// All states, in insertion order.
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// All transitions, in insertion order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// The initial state id (`q0`), if set.
    pub fn initial(&self) -> Option<&str> {
        self.initial.as_deref()
    }

    /// The accepting state ids (`F`).
    pub fn finals(&self) -> impl Iterator<Item = &str> {
        self.finals.iter().map(String::as_str)
    }

    /// Whether `id` is an accepting state.
    pub fn is_final(&self, id: &str) -> bool {
        self.finals.contains(id)
    }

    /// Looks up a state by id.
    pub fn state(&self, id: &str) -> Option<&State> {
        self.states.iter().find(|s| s.id == id)
    }

    /// Adds a state with the automaton's default color; returns its id.
    /// Adding an existing id is a no-op (states are identified by id).
    pub fn add_state(&mut self, id: impl Into<String>) -> String {
        let id = id.into();
        if self.state(&id).is_none() {
            self.states.push(State {
                id: id.clone(),
                colors: vec![self.color],
            });
        }
        id
    }

    /// Adds a state with explicit colors (bi-colored merge states).
    pub fn add_colored_state(&mut self, id: impl Into<String>, colors: Vec<u8>) -> String {
        let id = id.into();
        if self.state(&id).is_none() {
            self.states.push(State {
                id: id.clone(),
                colors,
            });
        }
        id
    }

    /// Marks the initial state.
    ///
    /// # Errors
    ///
    /// [`AutomatonError::UnknownState`] if the state was never added.
    pub fn set_initial(&mut self, id: &str) -> Result<()> {
        self.require_state(id)?;
        self.initial = Some(id.to_owned());
        Ok(())
    }

    /// Adds an accepting state.
    ///
    /// # Errors
    ///
    /// [`AutomatonError::UnknownState`] if the state was never added.
    pub fn add_final(&mut self, id: &str) -> Result<()> {
        self.require_state(id)?;
        self.finals.insert(id.to_owned());
        Ok(())
    }

    /// Attaches network semantics to a color.
    pub fn set_network(&mut self, color: u8, network: NetworkSemantics) {
        self.network.insert(color, network);
    }

    /// Network semantics of a color, if declared.
    pub fn network(&self, color: u8) -> Option<&NetworkSemantics> {
        self.network.get(&color)
    }

    /// Adds a `!m` transition.
    ///
    /// # Errors
    ///
    /// [`AutomatonError::UnknownState`] if either endpoint is missing.
    pub fn add_send(&mut self, from: &str, to: &str, message: AbstractMessage) -> Result<()> {
        self.add_transition(Transition::new(from, to, Action::Send(message)))
    }

    /// Adds a `?m` transition.
    ///
    /// # Errors
    ///
    /// [`AutomatonError::UnknownState`] if either endpoint is missing.
    pub fn add_receive(&mut self, from: &str, to: &str, message: AbstractMessage) -> Result<()> {
        self.add_transition(Transition::new(from, to, Action::Receive(message)))
    }

    /// Adds a γ-transition carrying an MTL translation program.
    ///
    /// # Errors
    ///
    /// [`AutomatonError::UnknownState`] if either endpoint is missing.
    pub fn add_gamma(&mut self, from: &str, to: &str, mtl: impl Into<String>) -> Result<()> {
        self.add_transition(Transition::new(from, to, Action::Gamma { mtl: mtl.into() }))
    }

    /// Adds an arbitrary transition.
    ///
    /// # Errors
    ///
    /// [`AutomatonError::UnknownState`] if either endpoint is missing.
    pub fn add_transition(&mut self, transition: Transition) -> Result<()> {
        self.require_state(&transition.from)?;
        self.require_state(&transition.to)?;
        self.transitions.push(transition);
        Ok(())
    }

    /// Transitions leaving a state.
    pub fn transitions_from<'a>(&'a self, id: &str) -> impl Iterator<Item = &'a Transition> + 'a {
        let id = id.to_owned();
        self.transitions.iter().filter(move |t| t.from == id)
    }

    /// All distinct message names appearing on transitions (`M` in §3.1).
    pub fn message_names(&self) -> BTreeSet<&str> {
        self.transitions
            .iter()
            .filter_map(|t| t.action.message().map(AbstractMessage::name))
            .collect()
    }

    /// Checks well-formedness: an initial state, at least one final
    /// state, every state reachable, a final state reachable from the
    /// initial state, and no state mixing action kinds on its outgoing
    /// transitions (the engine classifies states as receiving, sending
    /// or no-action; a state that is several at once is unexecutable —
    /// multiple *receive* alternatives from one state remain legal).
    ///
    /// # Errors
    ///
    /// The first violation found, as an [`AutomatonError`].
    pub fn validate(&self) -> Result<()> {
        let initial = self
            .initial
            .as_deref()
            .ok_or_else(|| AutomatonError::NoInitialState {
                automaton: self.name.clone(),
            })?;
        if self.finals.is_empty() {
            return Err(AutomatonError::NoFinalState {
                automaton: self.name.clone(),
            });
        }
        let reachable = self.reachable_from(initial);
        for s in &self.states {
            if !reachable.contains(s.id.as_str()) {
                return Err(AutomatonError::UnreachableState {
                    automaton: self.name.clone(),
                    state: s.id.clone(),
                });
            }
        }
        if !self.finals.iter().any(|f| reachable.contains(f.as_str())) {
            return Err(AutomatonError::NoPathToFinal {
                automaton: self.name.clone(),
            });
        }
        for s in &self.states {
            let outgoing: Vec<&Transition> = self.transitions_from(&s.id).collect();
            let mixed = outgoing
                .iter()
                .any(|t| action_kind(&t.action) != action_kind(&outgoing[0].action));
            if mixed {
                return Err(AutomatonError::MixedActionKinds {
                    automaton: self.name.clone(),
                    state: s.id.clone(),
                    labels: outgoing.iter().map(|t| t.action.label()).collect(),
                });
            }
        }
        Ok(())
    }

    /// The set of states reachable from `start` (inclusive).
    pub fn reachable_from<'a>(&'a self, start: &'a str) -> HashSet<&'a str> {
        let mut seen: HashSet<&str> = HashSet::new();
        let mut queue: VecDeque<&str> = VecDeque::new();
        if self.state(start).is_some() {
            seen.insert(start);
            queue.push_back(start);
        }
        while let Some(current) = queue.pop_front() {
            for t in self.transitions_from(current) {
                if seen.insert(t.to.as_str()) {
                    queue.push_back(t.to.as_str());
                }
            }
        }
        seen
    }

    /// Number of γ-transitions (bi-colored crossings) in the automaton.
    pub fn gamma_count(&self) -> usize {
        self.transitions
            .iter()
            .filter(|t| t.action.is_gamma())
            .count()
    }

    /// Whether the automaton accepts the given trace of action labels
    /// (`"!op"`, `"?op.reply"`, `"γ"`), walking deterministically by
    /// label from the initial state. Used to check that observed
    /// behaviour conforms to a usage protocol.
    ///
    /// γ-transitions in the automaton are crossed silently (they emit no
    /// observable action), so traces list only sends/receives.
    pub fn accepts(&self, trace: &[&str]) -> bool {
        let Some(initial) = self.initial() else {
            return false;
        };
        let mut current = initial.to_owned();
        for label in trace {
            // Cross silent γ-transitions first.
            loop {
                let gammas: Vec<&Transition> = self
                    .transitions_from(&current)
                    .filter(|t| t.action.is_gamma())
                    .collect();
                let has_match = self
                    .transitions_from(&current)
                    .any(|t| t.action.label() == *label);
                if has_match || gammas.is_empty() {
                    break;
                }
                current = gammas[0].to.clone();
            }
            let next = self
                .transitions_from(&current)
                .find(|t| t.action.label() == *label)
                .map(|t| t.to.clone());
            match next {
                Some(n) => current = n,
                None => return false,
            }
        }
        // Cross trailing γs toward acceptance.
        for _ in 0..self.states.len() {
            if self.is_final(&current) {
                return true;
            }
            let Some(g) = self
                .transitions_from(&current)
                .find(|t| t.action.is_gamma())
                .map(|t| t.to.clone())
            else {
                break;
            };
            current = g;
        }
        self.is_final(&current)
    }

    /// Exports Graphviz DOT text for visual inspection (the paper's
    /// figures are exactly these drawings).
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name);
        let _ = writeln!(out, "  rankdir=LR;");
        for s in &self.states {
            let shape = if self.finals.contains(&s.id) {
                "doublecircle"
            } else {
                "circle"
            };
            let fill = if s.is_bicolored() {
                ", style=filled, fillcolor=lightgoldenrod"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  \"{}\" [shape={shape}, label=\"{}\\n{:?}\"{fill}];",
                s.id, s.id, s.colors
            );
        }
        if let Some(init) = &self.initial {
            let _ = writeln!(out, "  __start [shape=point];");
            let _ = writeln!(out, "  __start -> \"{init}\";");
        }
        for t in &self.transitions {
            let style = if t.action.is_gamma() {
                ", style=dashed"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [label=\"{}\"{style}];",
                t.from,
                t.to,
                t.action.label().replace('"', "'")
            );
        }
        out.push_str("}\n");
        out
    }

    fn require_state(&self, id: &str) -> Result<()> {
        if self.state(id).is_some() {
            Ok(())
        } else {
            Err(AutomatonError::UnknownState {
                automaton: self.name.clone(),
                state: id.to_owned(),
            })
        }
    }
}

/// The kind of a transition action, for mixed-kind detection.
fn action_kind(action: &Action) -> u8 {
    match action {
        Action::Send(_) => 0,
        Action::Receive(_) => 1,
        Action::Gamma { .. } => 2,
    }
}

impl fmt::Display for Automaton {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "automaton {} (color {}, {} states, {} transitions)",
            self.name,
            self.color,
            self.states.len(),
            self.transitions.len()
        )?;
        for t in &self.transitions {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

/// Builds the linear request/response usage-protocol shape that RPC-style
/// APIs produce: `!op1 ?op1 !op2 ?op2 …` (the shape of Fig. 2).
///
/// Each pair is an operation invocation followed by its reply; state ids
/// are `s0..s2n`; the last state is accepting.
pub fn linear_usage_protocol(
    name: &str,
    color: u8,
    operations: &[(AbstractMessage, AbstractMessage)],
) -> Automaton {
    let mut a = Automaton::new(name, color);
    let mut prev = a.add_state("s0");
    a.set_initial("s0").expect("state s0 was just added");
    let mut idx = 1;
    for (request, reply) in operations {
        let mid = a.add_state(format!("s{idx}"));
        idx += 1;
        let next = a.add_state(format!("s{idx}"));
        idx += 1;
        a.add_send(&prev, &mid, request.clone())
            .expect("states exist");
        a.add_receive(&mid, &next, reply.clone())
            .expect("states exist");
        prev = next;
    }
    a.add_final(&prev).expect("final state exists");
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(name: &str) -> AbstractMessage {
        AbstractMessage::new(name)
    }

    fn simple() -> Automaton {
        let mut a = Automaton::new("T", 1);
        a.add_state("s0");
        a.add_state("s1");
        a.add_state("s2");
        a.set_initial("s0").unwrap();
        a.add_final("s2").unwrap();
        a.add_send("s0", "s1", msg("req")).unwrap();
        a.add_receive("s1", "s2", msg("rep")).unwrap();
        a
    }

    #[test]
    fn validate_accepts_wellformed() {
        simple().validate().unwrap();
    }

    #[test]
    fn validate_rejects_missing_initial() {
        let mut a = Automaton::new("T", 1);
        a.add_state("s0");
        a.add_final("s0").unwrap();
        assert!(matches!(
            a.validate(),
            Err(AutomatonError::NoInitialState { .. })
        ));
    }

    #[test]
    fn validate_rejects_missing_final() {
        let mut a = Automaton::new("T", 1);
        a.add_state("s0");
        a.set_initial("s0").unwrap();
        assert!(matches!(
            a.validate(),
            Err(AutomatonError::NoFinalState { .. })
        ));
    }

    #[test]
    fn validate_rejects_unreachable() {
        let mut a = simple();
        a.add_state("island");
        assert!(matches!(
            a.validate(),
            Err(AutomatonError::UnreachableState { .. })
        ));
    }

    #[test]
    fn validate_rejects_unreachable_final() {
        let mut a = Automaton::new("T", 1);
        a.add_state("s0");
        a.add_state("s1");
        a.set_initial("s0").unwrap();
        a.add_final("s1").unwrap();
        // no transition s0 -> s1: s1 unreachable
        assert!(a.validate().is_err());
    }

    #[test]
    fn validate_rejects_mixed_action_kinds() {
        let mut a = Automaton::new("T", 1);
        a.add_state("s0");
        a.add_state("s1");
        a.set_initial("s0").unwrap();
        a.add_final("s1").unwrap();
        a.add_send("s0", "s1", msg("req")).unwrap();
        a.add_receive("s0", "s1", msg("push")).unwrap();
        let err = a.validate().unwrap_err();
        match err {
            AutomatonError::MixedActionKinds { state, labels, .. } => {
                assert_eq!(state, "s0");
                assert_eq!(labels, vec!["!req", "?push"]);
            }
            other => panic!("expected MixedActionKinds, got {other:?}"),
        }
    }

    #[test]
    fn validate_allows_multiple_receive_alternatives() {
        let mut a = Automaton::new("T", 1);
        a.add_state("s0");
        a.add_state("s1");
        a.add_state("s2");
        a.set_initial("s0").unwrap();
        a.add_final("s1").unwrap();
        a.add_final("s2").unwrap();
        a.add_receive("s0", "s1", msg("yes")).unwrap();
        a.add_receive("s0", "s2", msg("no")).unwrap();
        a.validate().unwrap();
    }

    #[test]
    fn transition_requires_states() {
        let mut a = Automaton::new("T", 1);
        a.add_state("s0");
        assert!(matches!(
            a.add_send("s0", "nope", msg("m")),
            Err(AutomatonError::UnknownState { .. })
        ));
        assert!(matches!(
            a.set_initial("nope"),
            Err(AutomatonError::UnknownState { .. })
        ));
        assert!(matches!(
            a.add_final("nope"),
            Err(AutomatonError::UnknownState { .. })
        ));
    }

    #[test]
    fn duplicate_add_state_is_idempotent() {
        let mut a = Automaton::new("T", 1);
        a.add_state("s0");
        a.add_state("s0");
        assert_eq!(a.states().len(), 1);
    }

    #[test]
    fn message_names_collected() {
        let a = simple();
        let names: Vec<&str> = a.message_names().into_iter().collect();
        assert_eq!(names, vec!["rep", "req"]);
    }

    #[test]
    fn linear_builder_matches_fig2_shape() {
        let flickr = linear_usage_protocol(
            "AFlickr",
            1,
            &[
                (
                    msg("flickr.photos.search"),
                    msg("flickr.photos.search.reply"),
                ),
                (
                    msg("flickr.photos.getInfo"),
                    msg("flickr.photos.getInfo.reply"),
                ),
            ],
        );
        flickr.validate().unwrap();
        assert_eq!(flickr.states().len(), 5);
        assert_eq!(flickr.transitions().len(), 4);
        assert_eq!(flickr.initial(), Some("s0"));
        assert!(flickr.is_final("s4"));
        let labels: Vec<String> = flickr
            .transitions()
            .iter()
            .map(|t| t.action.label())
            .collect();
        assert_eq!(
            labels,
            vec![
                "!flickr.photos.search",
                "?flickr.photos.search.reply",
                "!flickr.photos.getInfo",
                "?flickr.photos.getInfo.reply",
            ]
        );
    }

    #[test]
    fn accepts_valid_traces() {
        let a = linear_usage_protocol(
            "T",
            1,
            &[
                (msg("search"), msg("search.reply")),
                (msg("get"), msg("get.reply")),
            ],
        );
        assert!(a.accepts(&["!search", "?search.reply", "!get", "?get.reply"]));
        assert!(
            !a.accepts(&["!search", "?search.reply"]),
            "stops before final"
        );
        assert!(!a.accepts(&["!get"]), "wrong order");
        assert!(!a.accepts(&["!search", "!search"]), "unexpected repeat");
        assert!(!a.accepts(&[]), "initial is not accepting here");
    }

    #[test]
    fn accepts_crosses_gammas_silently() {
        let mut a = Automaton::new("G", 1);
        a.add_state("s0");
        a.add_state("s1");
        a.add_state("s2");
        a.add_state("s3");
        a.set_initial("s0").unwrap();
        a.add_final("s3").unwrap();
        a.add_receive("s0", "s1", msg("req")).unwrap();
        a.add_gamma("s1", "s2", "").unwrap();
        a.add_send("s2", "s3", msg("rep")).unwrap();
        assert!(a.accepts(&["?req", "!rep"]));
        assert!(!a.accepts(&["?req"]));
    }

    #[test]
    fn dot_export_mentions_gamma_and_finals() {
        let mut a = simple();
        a.add_colored_state("b", vec![1, 2]);
        a.add_gamma("s2", "b", "x = y").unwrap();
        a.add_final("b").unwrap();
        let dot = a.to_dot();
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("lightgoldenrod"));
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn gamma_count_counts_only_gammas() {
        let mut a = simple();
        assert_eq!(a.gamma_count(), 0);
        a.add_colored_state("b", vec![1, 2]);
        a.add_gamma("s2", "b", "").unwrap();
        assert_eq!(a.gamma_count(), 1);
    }

    #[test]
    fn network_semantics_per_color() {
        let mut a = simple();
        a.set_network(1, NetworkSemantics::tcp_sync("GIOP.mdl"));
        assert_eq!(a.network(1).unwrap().mdl, "GIOP.mdl");
        assert!(a.network(2).is_none());
    }
}
