//! End-to-end tests of the `starlink` CLI binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_starlink-tool"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("starlink-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const CLIENT_ATM: &str = "\
automaton AClient color=1 {
  states s0 s1 s2
  initial s0
  final s2
  s0 -> s1 : !client.search(text)
  s1 -> s2 : ?client.search.reply(items)
}";

const SERVICE_ATM: &str = "\
automaton AService color=2 {
  states s0 s1 s2
  initial s0
  final s2
  s0 -> s1 : !service.find(q)
  s1 -> s2 : ?service.find.reply(results)
}";

const REGISTRY: &str = "\
message search = client.search, service.find
field keyword = text, q
field result-set = items, results
";

#[test]
fn validate_accepts_good_models() {
    let dir = temp_dir("validate");
    let model = dir.join("client.atm");
    std::fs::write(&model, CLIENT_ATM).unwrap();
    let output = bin().arg("validate").arg(&model).output().unwrap();
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("AClient"));
    assert!(stdout.contains("3 states"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn validate_rejects_broken_models() {
    let dir = temp_dir("validate-bad");
    let model = dir.join("bad.atm");
    std::fs::write(&model, "automaton X color=1 {\n  initial s0\n}").unwrap();
    let output = bin().arg("validate").arg(&model).output().unwrap();
    assert!(!output.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dot_prints_graphviz() {
    let dir = temp_dir("dot");
    let model = dir.join("client.atm");
    std::fs::write(&model, CLIENT_ATM).unwrap();
    let output = bin().arg("dot").arg(&model).output().unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.starts_with("digraph"));
    assert!(stdout.contains("!client.search"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_produces_loadable_model() {
    let dir = temp_dir("merge");
    let client = dir.join("client.atm");
    let service = dir.join("service.atm");
    let registry = dir.join("registry.txt");
    let merged = dir.join("merged.atm");
    std::fs::write(&client, CLIENT_ATM).unwrap();
    std::fs::write(&service, SERVICE_ATM).unwrap();
    std::fs::write(&registry, REGISTRY).unwrap();

    let output = bin()
        .args(["merge"])
        .arg(&client)
        .arg(&service)
        .arg("--registry")
        .arg(&registry)
        .arg("--out")
        .arg(&merged)
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("Strong"));

    // The emitted model validates through the CLI again.
    let output = bin().arg("validate").arg(&merged).output().unwrap();
    assert!(output.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_loop_form_validates() {
    let dir = temp_dir("merge-loop");
    let client = dir.join("client.atm");
    let service = dir.join("service.atm");
    let registry = dir.join("registry.txt");
    std::fs::write(&client, CLIENT_ATM).unwrap();
    std::fs::write(&service, SERVICE_ATM).unwrap();
    std::fs::write(&registry, REGISTRY).unwrap();
    let output = bin()
        .args(["merge", "--loop"])
        .arg(&client)
        .arg(&service)
        .arg("--registry")
        .arg(&registry)
        .output()
        .unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("-service"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mdl_check_lists_variants() {
    let dir = temp_dir("mdl");
    let spec = dir.join("wire.mdl");
    std::fs::write(
        &spec,
        "<Message:Req><Kind:8><End:Message>\n<Message:Rep><Kind:8><End:Message>",
    )
    .unwrap();
    let output = bin().arg("mdl-check").arg(&spec).output().unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("Req, Rep"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn models_summarises_bundle() {
    let dir = temp_dir("models");
    std::fs::write(dir.join("wire.mdl"), "<Message:Req><Kind:8><End:Message>").unwrap();
    std::fs::write(dir.join("client.atm"), CLIENT_ATM).unwrap();
    let output = bin().arg("models").arg(&dir).output().unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("loaded 2 model file(s)"));
    assert!(stdout.contains("wire.mdl"));
    assert!(stdout.contains("AClient"));
    let _ = std::fs::remove_dir_all(&dir);
}

fn sample_snapshot_text() -> String {
    use starlink_telemetry::{Recorder, TelemetrySink, TraceEvent};
    let recorder = Recorder::new();
    recorder.record(&TraceEvent::SessionStarted);
    recorder.record(&TraceEvent::SessionFinished {
        final_state: "s2",
        exchanges: 2,
    });
    recorder.record(&TraceEvent::DispatchProbe {
        outcome: starlink_telemetry::ProbeOutcome::Hit,
    });
    recorder.snapshot().render_text()
}

#[test]
fn stats_renders_snapshot_file() {
    let dir = temp_dir("stats-file");
    let file = dir.join("snapshot.prom");
    std::fs::write(&file, sample_snapshot_text()).unwrap();
    let output = bin().arg("stats").arg(&file).output().unwrap();
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("# sessions: 1 started, 1 finished, 0 failed"));
    assert!(stdout.contains("# dispatch: 1 hit, 0 miss, 0 fallback"));
    assert!(stdout.contains("starlink_sessions_finished_total 1"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_fetches_snapshot_over_tcp() {
    let listener = starlink_net::NetworkEngine::with_defaults()
        .listen(&"tcp://127.0.0.1:0".parse().unwrap())
        .unwrap();
    let endpoint = listener.local_endpoint();
    let server = std::thread::spawn(move || {
        let mut conn = listener.accept().unwrap();
        conn.send(sample_snapshot_text().as_bytes()).unwrap();
    });
    let output = bin()
        .arg("stats")
        .arg(endpoint.to_string())
        .output()
        .unwrap();
    server.join().unwrap();
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("starlink_sessions_started_total 1"));
}

#[test]
fn stats_rejects_non_snapshot_file() {
    let dir = temp_dir("stats-bad");
    let file = dir.join("garbage.txt");
    std::fs::write(&file, "this is not an exposition\n").unwrap();
    let output = bin().arg("stats").arg(&file).output().unwrap();
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("stats"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_command_fails_with_usage() {
    let output = bin().arg("frobnicate").output().unwrap();
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("USAGE"));
}

#[test]
fn help_prints_usage() {
    let output = bin().arg("help").output().unwrap();
    assert!(output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("USAGE"));
}
