//! `starlink` — command-line tools for Starlink models.
//!
//! ```text
//! starlink validate <model.atm>…         validate automaton models
//! starlink dot <model.atm>               print Graphviz DOT
//! starlink mdl-check <spec.mdl>…         compile MDL specs, list variants
//! starlink mtl-check <program.mtl>…      parse MTL programs
//! starlink merge <client.atm> <service.atm> [options]
//!     --registry <file>   semantic declarations (see below)
//!     --loop              emit the deployable service-loop form
//!     --out <file>        write the merged model (DSL) instead of stdout
//! starlink models <dir>                  load a model bundle, summarise
//! starlink stats <endpoint-or-file>      fetch or parse a telemetry snapshot
//! starlink trace <endpoint-or-file> [--export-json <path>]
//!                                        fetch or parse a Chrome trace, validate,
//!                                        print a per-session timeline
//! starlink health <endpoint-or-file> [--watch] [--interval <secs>] [--count <n>]
//!                                        fetch or parse a health report; exit code
//!                                        0 healthy / 1 degraded / 2 unhealthy
//!                                        (3 = could not fetch or parse)
//! ```
//!
//! Registry file format (one declaration per line):
//!
//! ```text
//! # comments allowed
//! message photo-search = flickr.photos.search, picasa.photos.search
//! field keyword = text, q
//! ```

use starlink_automata::merge::{intertwine, into_service_loop, MergeOptions};
use starlink_automata::{dsl, Automaton};
use starlink_core::ModelRegistry;
use starlink_mdl::{MdlCodec, MessageCodec};
use starlink_message::equiv::SemanticRegistry;
use starlink_mtl::MtlProgram;
use starlink_net::{Endpoint, NetError, NetworkEngine};
use starlink_telemetry::{
    parse_chrome_trace, validate_chrome_trace, ChromeEvent, HealthReport, HealthStatus, Snapshot,
};
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("validate") => cmd_validate(&args[1..]).map(|()| ExitCode::SUCCESS),
        Some("dot") => cmd_dot(&args[1..]).map(|()| ExitCode::SUCCESS),
        Some("mdl-check") => cmd_mdl_check(&args[1..]).map(|()| ExitCode::SUCCESS),
        Some("mtl-check") => cmd_mtl_check(&args[1..]).map(|()| ExitCode::SUCCESS),
        Some("merge") => cmd_merge(&args[1..]).map(|()| ExitCode::SUCCESS),
        Some("models") => cmd_models(&args[1..]).map(|()| ExitCode::SUCCESS),
        Some("stats") => cmd_stats(&args[1..]).map(|()| ExitCode::SUCCESS),
        Some("trace") => cmd_trace(&args[1..]).map(|()| ExitCode::SUCCESS),
        Some("health") => cmd_health(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{}", USAGE);
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("starlink: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
starlink — tools for Starlink interoperability models

USAGE:
  starlink validate <model.atm>...       validate automaton models
  starlink dot <model.atm>               print Graphviz DOT
  starlink mdl-check <spec.mdl>...       compile MDL specs, list variants
  starlink mtl-check <program.mtl>...    parse MTL programs
  starlink merge <client.atm> <service.atm> [--registry <file>] [--loop] [--out <file>]
  starlink models <dir>                  load a model bundle, summarise
  starlink stats <endpoint-or-file>      fetch or parse a telemetry snapshot
  starlink trace <endpoint-or-file> [--export-json <path>]
                                         fetch or parse a Chrome trace, validate,
                                         print a per-session timeline
  starlink health <endpoint-or-file> [--watch] [--interval <secs>] [--count <n>]
                                         fetch or parse a health report; exit code
                                         0 healthy / 1 degraded / 2 unhealthy
                                         (3 = could not fetch or parse)
";

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn load_automaton(path: &str) -> Result<Automaton, String> {
    let text = read(path)?;
    dsl::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_validate(files: &[String]) -> Result<(), String> {
    if files.is_empty() {
        return Err("validate: no model files given".into());
    }
    for file in files {
        let automaton = load_automaton(file)?;
        automaton.validate().map_err(|e| format!("{file}: {e}"))?;
        println!(
            "{file}: ok — {} ({} states, {} transitions, {} γ, colors {:?})",
            automaton.name(),
            automaton.states().len(),
            automaton.transitions().len(),
            automaton.gamma_count(),
            {
                let mut colors: Vec<u8> = automaton
                    .states()
                    .iter()
                    .flat_map(|s| s.colors.clone())
                    .collect();
                colors.sort_unstable();
                colors.dedup();
                colors
            }
        );
    }
    Ok(())
}

fn cmd_dot(files: &[String]) -> Result<(), String> {
    let [file] = files else {
        return Err("dot: exactly one model file expected".into());
    };
    let automaton = load_automaton(file)?;
    print!("{}", automaton.to_dot());
    Ok(())
}

fn cmd_mdl_check(files: &[String]) -> Result<(), String> {
    if files.is_empty() {
        return Err("mdl-check: no spec files given".into());
    }
    for file in files {
        let text = read(file)?;
        let codec = MdlCodec::from_text(&text).map_err(|e| format!("{file}: {e}"))?;
        println!(
            "{file}: ok — variants: {}",
            codec.message_names().join(", ")
        );
    }
    Ok(())
}

fn cmd_mtl_check(files: &[String]) -> Result<(), String> {
    if files.is_empty() {
        return Err("mtl-check: no program files given".into());
    }
    for file in files {
        let text = read(file)?;
        let program = MtlProgram::parse(&text).map_err(|e| format!("{file}: {e}"))?;
        println!("{file}: ok — {} statements", program.statements.len());
    }
    Ok(())
}

/// Parses the registry declaration format documented in the crate docs.
fn parse_registry(text: &str) -> Result<SemanticRegistry, String> {
    let mut registry = SemanticRegistry::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("registry line {}: {msg}: `{raw}`", i + 1);
        let (kind, rest) = line
            .split_once(' ')
            .ok_or_else(|| err("expected `message`/`field` declaration"))?;
        let (concept, names) = rest
            .split_once('=')
            .ok_or_else(|| err("expected `concept = name, name`"))?;
        let concept = concept.trim();
        let names: Vec<&str> = names.split(',').map(str::trim).collect();
        match kind {
            "message" => registry.declare_message_concept(concept, names),
            "field" => registry.declare_field_concept(concept, names),
            other => return Err(err(&format!("unknown declaration kind `{other}`"))),
        }
    }
    Ok(registry)
}

fn cmd_merge(args: &[String]) -> Result<(), String> {
    let mut files = Vec::new();
    let mut registry_file = None;
    let mut out_file = None;
    let mut loop_form = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--registry" => {
                registry_file = Some(
                    args.get(i + 1)
                        .ok_or("merge: --registry needs a file")?
                        .clone(),
                );
                i += 2;
            }
            "--out" => {
                out_file = Some(args.get(i + 1).ok_or("merge: --out needs a file")?.clone());
                i += 2;
            }
            "--loop" => {
                loop_form = true;
                i += 1;
            }
            other if other.starts_with("--") => {
                return Err(format!("merge: unknown option `{other}`"));
            }
            _ => {
                files.push(args[i].clone());
                i += 1;
            }
        }
    }
    let [client_file, service_file] = files.as_slice() else {
        return Err("merge: expected <client.atm> <service.atm>".into());
    };
    let client = load_automaton(client_file)?;
    let service = load_automaton(service_file)?;
    let registry = match registry_file {
        Some(f) => parse_registry(&read(&f)?)?,
        None => SemanticRegistry::new(),
    };
    let (merged, report) = intertwine(&client, &service, &registry, &MergeOptions::default())
        .map_err(|e| e.to_string())?;
    eprintln!(
        "merge: {:?} — {} intertwined pair(s)",
        report.class,
        report.intertwined_count()
    );
    for r in &report.resolutions {
        eprintln!("  {r:?}");
    }
    let final_model = if loop_form {
        into_service_loop(&merged).map_err(|e| e.to_string())?
    } else {
        merged
    };
    let text = dsl::print(&final_model);
    match out_file {
        Some(f) => {
            std::fs::write(&f, text).map_err(|e| format!("cannot write {f}: {e}"))?;
            eprintln!("merge: wrote {f}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// How long a fetch waits for the endpoint's reply frame.
const FETCH_TIMEOUT: Duration = Duration::from_secs(5);

/// Fetches one text frame from an endpoint, or reads a file — shared by
/// `stats` and `trace`, which both accept either form.
fn fetch_or_read(cmd: &str, target: &str) -> Result<String, String> {
    fetch_or_read_with(cmd, target, None)
}

/// Like [`fetch_or_read`], optionally sending a diagnostics selector
/// frame first (the `health` command's request protocol). Errors name
/// the endpoint tried and distinguish a refused connection from an
/// endpoint that accepted but never answered (or answered empty).
fn fetch_or_read_with(cmd: &str, target: &str, request: Option<&str>) -> Result<String, String> {
    if !target.contains("://") {
        return read(target);
    }
    let endpoint: Endpoint = target
        .parse()
        .map_err(|e| format!("{cmd}: {target}: {e}"))?;
    let mut conn = NetworkEngine::with_defaults().connect(&endpoint).map_err(|e| {
        format!("{cmd}: cannot connect to {target}: {e} (is the endpoint exposed and the host running?)")
    })?;
    if let Some(selector) = request {
        conn.send(selector.as_bytes())
            .map_err(|e| format!("{cmd}: sending request to {target}: {e}"))?;
    }
    let frame = match conn.receive_timeout(FETCH_TIMEOUT) {
        Ok(frame) => frame,
        Err(NetError::Closed) => {
            return Err(format!(
                "{cmd}: {target} closed the connection without sending a frame \
                 (endpoint reachable, but not serving this protocol?)"
            ));
        }
        Err(NetError::Timeout) => {
            return Err(format!(
                "{cmd}: no frame from {target} within {}s",
                FETCH_TIMEOUT.as_secs()
            ));
        }
        Err(e) => return Err(format!("{cmd}: receiving from {target}: {e}")),
    };
    if frame.is_empty() {
        return Err(format!("{cmd}: {target} sent an empty frame"));
    }
    String::from_utf8(frame).map_err(|_| format!("{cmd}: {target}: frame is not UTF-8"))
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let [target] = args else {
        return Err("stats: exactly one <endpoint> or <snapshot file> expected".into());
    };
    let text = fetch_or_read("stats", target)?;
    let snapshot = Snapshot::parse_text(&text).map_err(|e| format!("stats: {target}: {e}"))?;
    print!("{}", summarise_snapshot(&snapshot));
    print!("{}", snapshot.render_text());
    Ok(())
}

/// A short human-readable digest printed ahead of the raw exposition text.
fn summarise_snapshot(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# sessions: {} started, {} finished, {} failed\n",
        snap.counter("starlink_sessions_started_total"),
        snap.counter("starlink_sessions_finished_total"),
        snap.counter("starlink_sessions_failed_total"),
    ));
    let probe = |outcome| {
        snap.value("starlink_dispatch_probe_total", &[("outcome", outcome)])
            .unwrap_or(0)
    };
    out.push_str(&format!(
        "# dispatch: {} hit, {} miss, {} fallback\n",
        probe("hit"),
        probe("miss"),
        probe("fallback"),
    ));
    out.push_str(&format!(
        "# wire: {} msg in / {} msg out, {} B in / {} B out\n",
        snap.counter("starlink_wire_messages_in_total"),
        snap.counter("starlink_wire_messages_out_total"),
        snap.counter("starlink_wire_bytes_in_total"),
        snap.counter("starlink_wire_bytes_out_total"),
    ));
    // Latency quantiles estimated from the cumulative buckets of every
    // duration histogram present in the snapshot.
    for family in &snap.families {
        if !family.name.ends_with("_duration_ns") {
            continue;
        }
        let (Some(p50), Some(p90), Some(p99)) = (
            family.quantile(0.50),
            family.quantile(0.90),
            family.quantile(0.99),
        ) else {
            continue;
        };
        let stage = family
            .name
            .trim_start_matches("starlink_")
            .trim_end_matches("_duration_ns");
        out.push_str(&format!(
            "# {stage} latency: p50 {} / p90 {} / p99 {} (n={})\n",
            format_ns(p50),
            format_ns(p90),
            format_ns(p99),
            family.count.unwrap_or(0),
        ));
    }
    out
}

/// Renders a nanosecond quantity with an adaptive unit.
fn format_ns(ns: f64) -> String {
    if ns >= 1_000_000_000.0 {
        format!("{:.2}s", ns / 1_000_000_000.0)
    } else if ns >= 1_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.1}µs", ns / 1_000.0)
    } else {
        format!("{ns:.0}ns")
    }
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let mut target: Option<String> = None;
    let mut export = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--export-json" => {
                export = Some(
                    args.get(i + 1)
                        .ok_or("trace: --export-json needs a file")?
                        .clone(),
                );
                i += 2;
            }
            other if other.starts_with("--") => {
                return Err(format!("trace: unknown option `{other}`"));
            }
            _ => {
                if target.replace(args[i].clone()).is_some() {
                    return Err("trace: exactly one <endpoint> or <trace file> expected".into());
                }
                i += 1;
            }
        }
    }
    let Some(target) = target else {
        return Err("trace: exactly one <endpoint> or <trace file> expected".into());
    };
    let json = fetch_or_read("trace", &target)?;
    let stats = validate_chrome_trace(&json).map_err(|e| format!("trace: {target}: {e}"))?;
    println!(
        "# trace: {} event(s), {} span pair(s), {} session track(s)",
        stats.events, stats.span_pairs, stats.tracks
    );
    let events = parse_chrome_trace(&json).map_err(|e| format!("trace: {target}: {e}"))?;
    print!("{}", render_event_timeline(&events));
    if let Some(path) = export {
        std::fs::write(&path, &json).map_err(|e| format!("trace: cannot write {path}: {e}"))?;
        eprintln!("trace: wrote {path} ({} bytes)", json.len());
    }
    Ok(())
}

/// Plain-text timeline of validated Chrome events, one section per
/// session track (tid = session trace id), indentation following span
/// nesting.
fn render_event_timeline(events: &[ChromeEvent]) -> String {
    let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    let mut out = String::new();
    for tid in tids {
        out.push_str(&format!("session {tid}\n"));
        let mut depth = 0usize;
        for ev in events.iter().filter(|e| e.tid == tid) {
            let (marker, at_depth) = match ev.ph {
                'B' => {
                    depth += 1;
                    ("▶", depth - 1)
                }
                'E' => {
                    let d = depth.saturating_sub(1);
                    depth = d;
                    ("◀", d)
                }
                'X' => ("■", depth),
                _ => ("·", depth),
            };
            let dur = match ev.dur_us {
                Some(d) => format!(" [{d:.1}µs]"),
                None => String::new(),
            };
            out.push_str(&format!(
                "  {:>10.1}µs  {}{} {}{}\n",
                ev.ts_us,
                "  ".repeat(at_depth),
                marker,
                ev.name,
                dur
            ));
        }
    }
    out
}

fn cmd_health(args: &[String]) -> Result<ExitCode, String> {
    let mut target: Option<String> = None;
    let mut watch = false;
    let mut interval = Duration::from_secs(2);
    let mut count: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--watch" => {
                watch = true;
                i += 1;
            }
            "--interval" => {
                let secs: u64 = args
                    .get(i + 1)
                    .ok_or("health: --interval needs a number of seconds")?
                    .parse()
                    .map_err(|_| "health: --interval needs a number of seconds".to_owned())?;
                interval = Duration::from_secs(secs.max(1));
                i += 2;
            }
            "--count" => {
                let n: u64 = args
                    .get(i + 1)
                    .ok_or("health: --count needs a number of polls")?
                    .parse()
                    .map_err(|_| "health: --count needs a number of polls".to_owned())?;
                count = Some(n.max(1));
                i += 2;
            }
            other if other.starts_with("--") => {
                return Err(format!("health: unknown option `{other}`"));
            }
            _ => {
                if target.replace(args[i].clone()).is_some() {
                    return Err("health: exactly one <endpoint> or <report file> expected".into());
                }
                i += 1;
            }
        }
    }
    let Some(target) = target else {
        return Err("health: exactly one <endpoint> or <report file> expected".into());
    };
    if !watch {
        return Ok(match fetch_health(&target) {
            Ok(report) => {
                print!("{}", render_health(&report));
                ExitCode::from(report.overall.exit_code())
            }
            Err(e) => {
                eprintln!("starlink: {e}");
                ExitCode::from(3)
            }
        });
    }
    // Watch mode: poll at the interval, printing one line per poll with
    // the checks that changed status since the previous one. The exit
    // code reflects the last poll.
    let mut last: Option<HealthReport> = None;
    let mut last_code;
    let mut polls = 0u64;
    loop {
        match fetch_health(&target) {
            Ok(report) => {
                println!("{}", watch_line(&report, last.as_ref()));
                last_code = report.overall.exit_code();
                last = Some(report);
            }
            Err(e) => {
                eprintln!("starlink: {e}");
                last_code = 3;
                last = None;
            }
        }
        polls += 1;
        if count.is_some_and(|c| polls >= c) {
            break;
        }
        std::thread::sleep(interval);
    }
    Ok(ExitCode::from(last_code))
}

/// Fetches (sending the `health` diagnostics selector) or reads, then
/// parses, one health report. A server-side error frame (`error: …`) is
/// surfaced as the error message rather than a parse failure.
fn fetch_health(target: &str) -> Result<HealthReport, String> {
    let text = fetch_or_read_with("health", target, Some("health"))?;
    if let Some(message) = text.strip_prefix("error:") {
        return Err(format!("health: {target}: {}", message.trim()));
    }
    HealthReport::parse_text(&text).map_err(|e| format!("health: {target}: {e}"))
}

/// Full human-readable report: overall verdict, then each pair's checks.
fn render_health(report: &HealthReport) -> String {
    let mut out = format!("overall: {}\n", report.overall);
    for pair in &report.pairs {
        out.push_str(&format!("pair {}: {}\n", pair.pair, pair.status));
        for check in &pair.checks {
            out.push_str(&format!(
                "  {:<17} {:<9} {}\n",
                check.name,
                check.status.label(),
                check.reason
            ));
        }
    }
    out
}

/// One `--watch` line: the overall verdict plus deltas — checks whose
/// status changed since the previous poll (or, on the first poll, every
/// check that is not healthy).
fn watch_line(report: &HealthReport, last: Option<&HealthReport>) -> String {
    let mut line = format!("health {}", report.overall);
    for pair in &report.pairs {
        let prev_pair = last.and_then(|l| l.pairs.iter().find(|p| p.pair == pair.pair));
        for check in &pair.checks {
            let prev = prev_pair
                .and_then(|p| p.checks.iter().find(|c| c.name == check.name))
                .map(|c| c.status);
            match (last, prev) {
                // First poll: surface anything not healthy.
                (None, _) if check.status != HealthStatus::Healthy => {
                    line.push_str(&format!(
                        "  [{} {}: {}]",
                        check.name,
                        check.status.label(),
                        check.reason
                    ));
                }
                // Later polls: surface transitions only.
                (Some(_), prev) if prev != Some(check.status) => {
                    line.push_str(&format!(
                        "  [{} {} -> {}: {}]",
                        check.name,
                        prev.map(HealthStatus::label).unwrap_or("new"),
                        check.status.label(),
                        check.reason
                    ));
                }
                _ => {}
            }
        }
    }
    line
}

fn cmd_models(args: &[String]) -> Result<(), String> {
    let [dir] = args else {
        return Err("models: exactly one directory expected".into());
    };
    let mut registry = ModelRegistry::new();
    let loaded = registry
        .load_dir(Path::new(dir))
        .map_err(|e| e.to_string())?;
    println!("{dir}: loaded {loaded} model file(s)");
    for name in registry.codec_names() {
        println!("  mdl      {name}");
    }
    for name in registry.automaton_names() {
        println!("  automaton {name}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_format_parses() {
        let reg = parse_registry(
            "# comment\nmessage search = a.search, b.find\nfield keyword = text, q\n",
        )
        .unwrap();
        assert!(reg.message_names_equivalent("a.search", "b.find"));
        assert_eq!(reg.field_concept("text"), reg.field_concept("q"));
    }

    #[test]
    fn registry_format_rejects_garbage() {
        assert!(parse_registry("bogus line").is_err());
        assert!(parse_registry("message missing-equals").is_err());
        assert!(parse_registry("widget x = a, b").is_err());
    }

    #[test]
    fn stats_digest_includes_latency_quantiles() {
        use starlink_telemetry::{Recorder, TelemetrySink, TraceEvent};
        let recorder = Recorder::new();
        for nanos in [800, 1_500, 3_000, 9_000, 40_000] {
            recorder.record(&TraceEvent::Parse {
                variant: "AddRequest",
                wire_bytes: 32,
                nanos,
            });
        }
        let snap = TelemetrySink::snapshot(&recorder).unwrap();
        let digest = summarise_snapshot(&snap);
        assert!(
            digest.contains("parse latency: p50"),
            "missing quantile line in:\n{digest}"
        );
        assert!(digest.contains("(n=5)"), "missing count in:\n{digest}");
    }

    #[test]
    fn trace_timeline_indents_span_pairs() {
        let mk = |name: &str, ph: char, ts_us: f64| ChromeEvent {
            name: name.to_owned(),
            cat: "starlink".to_owned(),
            ph,
            ts_us,
            dur_us: if ph == 'X' { Some(2.0) } else { None },
            pid: 1,
            tid: 7,
            args: Vec::new(),
        };
        let events = vec![
            mk("session", 'B', 0.0),
            mk("receive", 'B', 1.0),
            mk("parse", 'X', 2.0),
            mk("receive", 'E', 5.0),
            mk("session", 'E', 9.0),
        ];
        let text = render_event_timeline(&events);
        assert!(text.starts_with("session 7\n"));
        assert!(text.contains("▶ session"));
        assert!(text.contains("  ▶ receive"));
        assert!(text.contains("■ parse [2.0µs]"));
        assert!(text.contains("◀ session"));
    }
}
