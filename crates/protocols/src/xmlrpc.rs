//! XML-RPC over HTTP POST — the protocol of the paper's first Flickr
//! client (Fig. 9).

use crate::http::http_codec;
use crate::layered::{http_request_defaults, http_response_defaults, LayerRoute, LayeredCodec};
use starlink_automata::{Automaton, NetworkSemantics};
use starlink_core::{ActionRule, ParamRule, ProtocolBinding, ReplyAction};
use starlink_mdl::{MdlCodec, MdlError};
use starlink_message::{AbstractMessage, Value};
use std::sync::Arc;

/// XML-RPC message MDL (xml dialect): `methodCall` and `methodResponse`
/// documents with `<param><value>…</value></param>` parameter lists.
pub const XMLRPC_MDL: &str = "\
# XML-RPC messages (xml dialect)
<Dialect:xml>
<Message:MethodCall>
<Root:methodCall>
<Text:MethodName=methodName>
<List:Params=params/param>
<ItemTree:Params.value=value>
<End:Message>
<Message:MethodResponse>
<Root:methodResponse>
<List:Params=params/param>
<ItemTree:Params.value=value>
<End:Message>";

/// Compiles the plain XML-RPC document codec (no HTTP layer).
///
/// # Errors
///
/// Never fails for the embedded spec.
pub fn xmlrpc_document_codec() -> Result<MdlCodec, MdlError> {
    MdlCodec::from_text(XMLRPC_MDL)
}

/// Compiles the XML-RPC-over-HTTP codec posting to `endpoint_path` on
/// `host`.
///
/// # Errors
///
/// Never fails for the embedded specs.
pub fn xmlrpc_codec(host: &str, endpoint_path: &str) -> Result<LayeredCodec, MdlError> {
    let mut request_defaults = http_request_defaults(host);
    request_defaults.push((
        "Method".parse().expect("static path"),
        Value::Str("POST".into()),
    ));
    request_defaults.push((
        "RequestURI".parse().expect("static path"),
        Value::Str(endpoint_path.to_owned()),
    ));
    Ok(LayeredCodec::new(
        Arc::new(http_codec()?),
        Arc::new(xmlrpc_document_codec()?),
        "Body",
        vec![
            LayerRoute {
                inner: "MethodCall".into(),
                outer_message: "HTTPRequest".into(),
                outer_defaults: request_defaults,
            },
            LayerRoute {
                inner: "MethodResponse".into(),
                outer_message: "HTTPResponse".into(),
                outer_defaults: http_response_defaults(),
            },
        ],
    ))
}

/// The standard XML-RPC binding: action label in `methodName`, wrapped
/// positional parameters, correlated replies (`methodResponse` carries no
/// method name).
pub fn xmlrpc_binding() -> ProtocolBinding {
    ProtocolBinding::new("XML-RPC", "XMLRPC.mdl", "MethodCall", "MethodResponse")
        .with_request_action(ActionRule::Field(
            "MethodName".parse().expect("static path"),
        ))
        .with_reply_action(ReplyAction::Correlated)
        .with_params(
            ParamRule::Wrapped {
                array: "Params".parse().expect("static path"),
                item: "value".into(),
            },
            ParamRule::Wrapped {
                array: "Params".parse().expect("static path"),
                item: "value".into(),
            },
        )
}

/// The XML-RPC client k-colored automaton (same shape as Fig. 4).
pub fn xmlrpc_client_automaton(color: u8) -> Automaton {
    let mut a = Automaton::new("XMLRPCClient", color);
    a.add_state("C1");
    a.add_state("C2");
    a.set_initial("C1").expect("state C1 was just added");
    a.add_final("C1").expect("state C1 was just added");
    a.add_send("C1", "C2", AbstractMessage::new("MethodCall"))
        .expect("states exist");
    a.add_receive("C2", "C1", AbstractMessage::new("MethodResponse"))
        .expect("states exist");
    a.set_network(color, NetworkSemantics::tcp_sync("XMLRPC.mdl"));
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_mdl::MessageCodec;

    #[test]
    fn fig9_wire_shape() {
        // Fig. 9's XML-RPC search request:
        // POST /xml-rpc … <methodCall><methodName>flickr.photos.search…
        let codec = xmlrpc_codec("flickr.com", "/xml-rpc").unwrap();
        let mut msg = AbstractMessage::new("MethodCall");
        msg.set_field("MethodName", Value::from("flickr.photos.search"));
        msg.set_field(
            "Params",
            Value::Array(vec![Value::Struct(vec![starlink_message::Field::new(
                "value",
                Value::from("tree"),
            )])]),
        );
        let wire = codec.compose(&msg).unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.starts_with("POST /xml-rpc HTTP/1.1\r\n"));
        assert!(text.contains("Content-Type: text/xml"));
        assert!(text.contains("<methodCall>"));
        assert!(text.contains("<methodName>flickr.photos.search</methodName>"));
        assert!(text.contains("<param><value>tree</value></param>"));
        let back = codec.parse(&wire).unwrap();
        assert_eq!(back.name(), "MethodCall");
    }

    #[test]
    fn response_roundtrip() {
        let codec = xmlrpc_codec("h", "/x").unwrap();
        let mut msg = AbstractMessage::new("MethodResponse");
        msg.set_field(
            "Params",
            Value::Array(vec![Value::Struct(vec![starlink_message::Field::new(
                "value",
                Value::from("<Photos>…</Photos>"),
            )])]),
        );
        let wire = codec.compose(&msg).unwrap();
        let back = codec.parse(&wire).unwrap();
        assert_eq!(back.name(), "MethodResponse");
        let params = back.get("Params").unwrap().as_array().unwrap();
        assert_eq!(params.len(), 1);
    }

    #[test]
    fn binding_wraps_and_unwraps() {
        let binding = xmlrpc_binding();
        let mut app = AbstractMessage::new("flickr.photos.getInfo");
        app.set_field("photo_id", Value::from("1000"));
        let proto = binding.bind_request(&app).unwrap();
        assert_eq!(proto.name(), "MethodCall");
        let mut template = AbstractMessage::new("flickr.photos.getInfo");
        template.set_field("photo_id", Value::Null);
        let back = binding
            .unbind_request(&proto, |a| {
                (a == "flickr.photos.getInfo").then_some(&template)
            })
            .unwrap();
        assert_eq!(back.get("photo_id").unwrap().as_str(), Some("1000"));
    }

    #[test]
    fn client_automaton_validates() {
        xmlrpc_client_automaton(1).validate().unwrap();
    }
}
