//! GIOP/IIOP: CORBA's General Inter-ORB Protocol over TCP (Fig. 4a, 5).
//!
//! The spec below extends the paper's Fig. 5 with the real GIOP header
//! (magic, version, flags, message type, message size) so the wire form
//! is recognisably GIOP. Parameter bodies use MDL's `valueseq` encoding —
//! a self-describing stand-in for CDR, which needs out-of-band IDL types
//! (substitution documented in DESIGN.md §2).

use starlink_automata::{Automaton, NetworkSemantics};
use starlink_core::{ActionRule, ParamRule, ProtocolBinding, ReplyAction};
use starlink_mdl::{MdlCodec, MdlError};
use starlink_message::{AbstractMessage, Value};

/// GIOP 1.0 request/reply MDL (binary dialect). `0x47494F50` is ASCII
/// `GIOP`.
pub const GIOP_MDL: &str = "\
# GIOP 1.0 subset: Request (type 0) and Reply (type 1)
<Dialect:binary>
<Message:GIOPRequest>
<Rule:Magic=0x47494F50>
<Rule:MessageType=0>
<Magic:32>
<VersionMajor:8>
<VersionMinor:8>
<Flags:8>
<MessageType:8>
<MessageSize:32:remaining>
<RequestID:32>
<ResponseExpected:8>
<ObjectKeyLength:32>
<ObjectKey:ObjectKeyLength:opaque>
<OperationLength:32>
<Operation:OperationLength:text>
<align:64>
<ParameterArray:eof:valueseq>
<End:Message>
<Message:GIOPReply>
<Rule:Magic=0x47494F50>
<Rule:MessageType=1>
<Magic:32>
<VersionMajor:8>
<VersionMinor:8>
<Flags:8>
<MessageType:8>
<MessageSize:32:remaining>
<RequestID:32>
<ReplyStatus:32>
<align:64>
<ParameterArray:eof:valueseq>
<End:Message>";

/// Compiles the GIOP codec.
///
/// # Errors
///
/// Never fails for the embedded spec.
pub fn giop_codec() -> Result<MdlCodec, MdlError> {
    MdlCodec::from_text(GIOP_MDL)
}

/// The standard binding of application actions onto GIOP (Fig. 7 left):
/// `?Action = GIOPRequest → Operation`, positional parameters in
/// `ParameterArray`, replies correlated via `RequestID`.
pub fn giop_binding() -> ProtocolBinding {
    ProtocolBinding::new("IIOP", "GIOP.mdl", "GIOPRequest", "GIOPReply")
        .with_request_action(ActionRule::Field("Operation".parse().expect("static path")))
        .with_reply_action(ReplyAction::Correlated)
        .with_params(
            ParamRule::PositionalArray("ParameterArray".parse().expect("static path")),
            ParamRule::PositionalArray("ParameterArray".parse().expect("static path")),
        )
        .with_correlation("RequestID".parse().expect("static path"))
        .with_request_default("VersionMajor".parse().expect("static path"), Value::UInt(1))
        .with_request_default("VersionMinor".parse().expect("static path"), Value::UInt(0))
        .with_request_default("Flags".parse().expect("static path"), Value::UInt(0))
        .with_request_default(
            "ResponseExpected".parse().expect("static path"),
            Value::UInt(1),
        )
        .with_request_default(
            "ObjectKey".parse().expect("static path"),
            Value::Bytes(b"starlink".to_vec()),
        )
        .with_reply_default("VersionMajor".parse().expect("static path"), Value::UInt(1))
        .with_reply_default("VersionMinor".parse().expect("static path"), Value::UInt(0))
        .with_reply_default("Flags".parse().expect("static path"), Value::UInt(0))
        .with_reply_default("ReplyStatus".parse().expect("static path"), Value::UInt(0))
}

/// The IIOP client k-colored automaton of Fig. 4a: a GIOP request sent
/// synchronously over TCP, the reply received on the same connection.
pub fn iiop_client_automaton(color: u8) -> Automaton {
    let mut a = Automaton::new("IIOPClient", color);
    a.add_state("A1");
    a.add_state("A2");
    a.set_initial("A1").expect("state A1 was just added");
    a.add_final("A1").expect("state A1 was just added");
    a.add_send("A1", "A2", AbstractMessage::new("GIOPRequest"))
        .expect("states exist");
    a.add_receive("A2", "A1", AbstractMessage::new("GIOPReply"))
        .expect("states exist");
    a.set_network(color, NetworkSemantics::tcp_sync("GIOP.mdl"));
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_mdl::MessageCodec;

    fn request() -> AbstractMessage {
        let mut m = AbstractMessage::new("GIOPRequest");
        m.set_field("RequestID", Value::UInt(5));
        m.set_field("ResponseExpected", Value::UInt(1));
        m.set_field("VersionMajor", Value::UInt(1));
        m.set_field("VersionMinor", Value::UInt(0));
        m.set_field("Flags", Value::UInt(0));
        m.set_field("ObjectKey", Value::Bytes(b"calc".to_vec()));
        m.set_field("Operation", Value::from("Add"));
        m.set_field(
            "ParameterArray",
            Value::Array(vec![Value::Int(3), Value::Int(4)]),
        );
        m
    }

    #[test]
    fn wire_form_starts_with_giop_magic() {
        let codec = giop_codec().unwrap();
        let wire = codec.compose(&request()).unwrap();
        assert_eq!(&wire[..4], b"GIOP");
        assert_eq!(wire[4], 1, "major version");
        assert_eq!(wire[7], 0, "request message type");
    }

    #[test]
    fn message_size_matches_remaining_bytes() {
        let codec = giop_codec().unwrap();
        let wire = codec.compose(&request()).unwrap();
        let size = u32::from_be_bytes([wire[8], wire[9], wire[10], wire[11]]) as usize;
        assert_eq!(size, wire.len() - 12, "GIOP header is 12 bytes");
    }

    #[test]
    fn roundtrip_request_and_reply() {
        let codec = giop_codec().unwrap();
        let wire = codec.compose(&request()).unwrap();
        let back = codec.parse(&wire).unwrap();
        assert_eq!(back.name(), "GIOPRequest");
        assert_eq!(back.get("Operation").unwrap().as_str(), Some("Add"));

        let mut reply = AbstractMessage::new("GIOPReply");
        reply.set_field("VersionMajor", Value::UInt(1));
        reply.set_field("VersionMinor", Value::UInt(0));
        reply.set_field("Flags", Value::UInt(0));
        reply.set_field("RequestID", Value::UInt(5));
        reply.set_field("ReplyStatus", Value::UInt(0));
        reply.set_field("ParameterArray", Value::Array(vec![Value::Int(7)]));
        let wire = codec.compose(&reply).unwrap();
        let back = codec.parse(&wire).unwrap();
        assert_eq!(back.name(), "GIOPReply");
        assert_eq!(
            back.get("ParameterArray").unwrap().as_array().unwrap(),
            &[Value::Int(7)]
        );
    }

    #[test]
    fn non_giop_bytes_rejected() {
        let codec = giop_codec().unwrap();
        assert!(codec.parse(b"NOPE____________________").is_err());
    }

    #[test]
    fn binding_supplies_header_defaults() {
        let codec = giop_codec().unwrap();
        let binding = giop_binding();
        let mut app = AbstractMessage::new("Add");
        app.set_field("x", Value::Int(1));
        let mut proto = binding.bind_request(&app).unwrap();
        proto.set_field("RequestID", Value::UInt(9));
        // All header fields present thanks to the binding defaults.
        let wire = codec.compose(&proto).unwrap();
        let back = codec.parse(&wire).unwrap();
        assert_eq!(back.get("Operation").unwrap().as_str(), Some("Add"));
        assert_eq!(back.get("ResponseExpected").unwrap().as_uint(), Some(1));
    }

    #[test]
    fn client_automaton_has_fig4_annotations() {
        let a = iiop_client_automaton(1);
        let n = a.network(1).unwrap();
        assert_eq!(n.transport, "tcp");
        assert_eq!(n.mdl, "GIOP.mdl");
        assert_eq!(
            n.to_string(),
            "transport_protocol=\"tcp\" mode=\"sync\" mdl=\"GIOP.mdl\""
        );
    }
}
