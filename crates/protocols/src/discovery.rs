//! Service-discovery protocols and their bridge.
//!
//! The paper positions Starlink as bridging "middleware protocols of
//! similar types, such as service discovery and RPC" (§4, citing the
//! ICDCS'11 companion, where SLP↔UPnP bridging was the flagship case).
//! This module reproduces that flavor with two simplified protocols:
//!
//! * **SSDP-like** (UPnP simple service discovery): HTTP-shaped
//!   `M-SEARCH` datagrams on a multicast group, unicast `200 OK`
//!   responses with `ST`/`LOCATION` headers — a *text* MDL,
//! * **SLP-like** (service location protocol): binary request/reply
//!   datagrams against a directory agent — a *binary* MDL,
//! * a [`DiscoveryBridge`]: answers SSDP searches by querying the SLP
//!   directory, translating service-type vocabularies with the semantic
//!   registry mechanism (a fixed type map here).
//!
//! Both protocols run over datagrams: the in-memory transport's
//! simulated multicast (deterministic tests) with explicit `Reply-To`
//! endpoints standing in for UDP source addresses.

use starlink_mdl::{MdlCodec, MdlError, MessageCodec};
use starlink_message::{AbstractMessage, Field, Value};
use starlink_net::{Endpoint, MemoryTransport, NetworkEngine};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// SSDP-like message formats (text dialect, HTTP-shaped datagrams).
pub const SSDP_MDL: &str = "\
# SSDP-like discovery messages (text dialect)
<Dialect:text>
<Message:MSearch>
<Request:Method Target Version>
<Rule:Method=M-SEARCH>
<Headers:Headers>
<Body:Body>
<End:Message>
<Message:SearchResponse>
<Status:Version Code Reason+>
<Rule:Version^=HTTP/>
<Headers:Headers>
<Body:Body>
<End:Message>";

/// SLP-like message formats (binary dialect).
pub const SLP_MDL: &str = "\
# SLP-like directory agent messages (binary dialect)
<Dialect:binary>
<Message:SrvRqst>
<Rule:Version=2>
<Rule:Function=1>
<Version:8>
<Function:8>
<TypeLength:32>
<ServiceType:TypeLength:text>
<End:Message>
<Message:SrvRply>
<Rule:Version=2>
<Rule:Function=2>
<Version:8>
<Function:8>
<ErrorCode:16>
<Urls:eof:valueseq>
<End:Message>";

/// Compiles the SSDP codec.
///
/// # Errors
///
/// Never fails for the embedded spec.
pub fn ssdp_codec() -> Result<MdlCodec, MdlError> {
    MdlCodec::from_text(SSDP_MDL)
}

/// Compiles the SLP codec.
///
/// # Errors
///
/// Never fails for the embedded spec.
pub fn slp_codec() -> Result<MdlCodec, MdlError> {
    MdlCodec::from_text(SLP_MDL)
}

/// The multicast group SSDP searches travel on.
pub const SSDP_GROUP: &str = "ssdp:239.255.255.250:1900";

/// A simplified SLP directory agent: a service-type → URLs registry
/// answering `SrvRqst` datagrams at a unicast endpoint.
pub struct SlpDirectory {
    endpoint: Endpoint,
    stop: Arc<AtomicBool>,
}

impl SlpDirectory {
    /// Deploys the directory at `endpoint` with a static registration
    /// table.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn deploy(
        net: &NetworkEngine,
        endpoint: &Endpoint,
        registrations: HashMap<String, Vec<String>>,
    ) -> Result<SlpDirectory, starlink_net::NetError> {
        let listener = net.listen(endpoint)?;
        let local = listener.local_endpoint();
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let codec = slp_codec().expect("embedded spec is valid");
        std::thread::spawn(move || {
            while !accept_stop.load(Ordering::SeqCst) {
                let mut conn = match listener.accept() {
                    Ok(c) => c,
                    Err(_) => return,
                };
                let wire = match conn.receive_timeout(Duration::from_secs(5)) {
                    Ok(w) => w,
                    Err(_) => continue,
                };
                let Ok(request) = codec.parse(&wire) else {
                    continue;
                };
                if request.name() != "SrvRqst" {
                    continue;
                }
                let service_type = request
                    .get("ServiceType")
                    .map(Value::to_text)
                    .unwrap_or_default();
                let urls: Vec<Value> = registrations
                    .get(&service_type)
                    .map(|v| v.iter().map(|u| Value::Str(u.clone())).collect())
                    .unwrap_or_default();
                let mut reply = AbstractMessage::new("SrvRply");
                reply.set_field("Version", Value::UInt(2));
                reply.set_field("ErrorCode", Value::UInt(0));
                reply.set_field("Urls", Value::Array(urls));
                if let Ok(wire) = codec.compose(&reply) {
                    let _ = conn.send(&wire);
                }
            }
        });
        Ok(SlpDirectory {
            endpoint: local,
            stop,
        })
    }

    /// The directory's endpoint.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Requests shutdown.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

impl Drop for SlpDirectory {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bridges SSDP searches to an SLP directory: the dual-protocol
/// discovery mediator.
pub struct DiscoveryBridge {
    stop: Arc<AtomicBool>,
}

impl DiscoveryBridge {
    /// Deploys the bridge: it joins the SSDP multicast group on
    /// `transport` and answers searches by querying the SLP directory at
    /// `slp_endpoint` via `net`. `type_map` translates SSDP search
    /// targets (`urn:…:service:Printing:1`) to SLP service types
    /// (`service:printer`).
    pub fn deploy(
        transport: &MemoryTransport,
        net: NetworkEngine,
        slp_endpoint: Endpoint,
        type_map: HashMap<String, String>,
    ) -> DiscoveryBridge {
        let group = transport.join_multicast(SSDP_GROUP);
        let stop = Arc::new(AtomicBool::new(false));
        let run_stop = stop.clone();
        let ssdp = ssdp_codec().expect("embedded spec is valid");
        let slp = slp_codec().expect("embedded spec is valid");
        std::thread::spawn(move || {
            while !run_stop.load(Ordering::SeqCst) {
                let datagram = match group.receive_timeout(Duration::from_millis(200)) {
                    Ok(d) => d,
                    Err(starlink_net::NetError::Timeout) => continue,
                    Err(_) => return,
                };
                let Ok(search) = ssdp.parse(&datagram) else {
                    continue;
                };
                if search.name() != "MSearch" {
                    continue;
                }
                let headers = search
                    .get("Headers")
                    .and_then(Value::as_struct)
                    .unwrap_or(&[])
                    .to_vec();
                let header = |name: &str| {
                    headers
                        .iter()
                        .find(|f| f.label().eq_ignore_ascii_case(name))
                        .map(|f| f.value().to_text())
                };
                let Some(st) = header("ST") else { continue };
                let Some(reply_to) = header("Reply-To") else {
                    continue;
                };
                // Vocabulary translation: SSDP search target → SLP type.
                let Some(slp_type) = type_map.get(&st).cloned() else {
                    continue; // not our service family: stay silent
                };
                // Query the SLP directory (γ: compose SrvRqst).
                let mut rqst = AbstractMessage::new("SrvRqst");
                rqst.set_field("Version", Value::UInt(2));
                rqst.set_field("ServiceType", Value::Str(slp_type));
                let urls: Vec<String> = (|| {
                    let wire = slp.compose(&rqst).ok()?;
                    let mut conn = net.connect(&slp_endpoint).ok()?;
                    conn.send(&wire).ok()?;
                    let reply_wire = conn.receive_timeout(Duration::from_secs(2)).ok()?;
                    let reply = slp.parse(&reply_wire).ok()?;
                    Some(
                        reply
                            .get("Urls")
                            .and_then(Value::as_array)
                            .unwrap_or(&[])
                            .iter()
                            .map(Value::to_text)
                            .collect(),
                    )
                })()
                .unwrap_or_default();
                // Answer the searcher (γ: compose SearchResponse per URL).
                let Ok(reply_ep) = reply_to.parse::<Endpoint>() else {
                    continue;
                };
                let Ok(mut back) = net.connect(&reply_ep) else {
                    continue;
                };
                for url in urls {
                    let mut response = AbstractMessage::new("SearchResponse");
                    response.set_field("Version", Value::from("HTTP/1.1"));
                    response.set_field("Code", Value::from("200"));
                    response.set_field("Reason", Value::from("OK"));
                    response.set_field(
                        "Headers",
                        Value::Struct(vec![
                            Field::new("ST", Value::Str(st.clone())),
                            Field::new("LOCATION", Value::Str(url.clone())),
                            Field::new("USN", Value::Str(format!("uuid:starlink::{st}"))),
                        ]),
                    );
                    response.set_field("Body", Value::from(""));
                    if let Ok(wire) = ssdp.compose(&response) {
                        let _ = back.send(&wire);
                    }
                }
            }
        });
        DiscoveryBridge { stop }
    }

    /// Requests shutdown.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

impl Drop for DiscoveryBridge {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// An SSDP client: multicasts an `M-SEARCH` and collects responses
/// arriving at its unicast reply endpoint until the timeout elapses.
/// Responses are gathered by a background collector thread so a silent
/// network (no responders) simply yields an empty result.
pub struct SsdpClient {
    transport: MemoryTransport,
    reply_endpoint: Endpoint,
    collected: Arc<std::sync::Mutex<Vec<String>>>,
}

impl SsdpClient {
    /// Creates a client; `reply_name` names its unicast reply endpoint.
    ///
    /// # Errors
    ///
    /// Bind failures on the reply endpoint.
    pub fn new(
        transport: MemoryTransport,
        net: NetworkEngine,
        reply_name: &str,
    ) -> Result<SsdpClient, starlink_net::NetError> {
        let reply_endpoint = Endpoint::memory(reply_name);
        let listener = net.listen(&reply_endpoint)?;
        let collected: Arc<std::sync::Mutex<Vec<String>>> =
            Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = collected.clone();
        std::thread::spawn(move || {
            let codec = ssdp_codec().expect("embedded spec is valid");
            loop {
                let Ok(mut conn) = listener.accept() else {
                    return;
                };
                while let Ok(wire) = conn.receive_timeout(Duration::from_millis(200)) {
                    let Ok(response) = codec.parse(&wire) else {
                        continue;
                    };
                    if response.name() != "SearchResponse" {
                        continue;
                    }
                    if let Some(headers) = response.get("Headers").and_then(Value::as_struct) {
                        if let Some(loc) = headers
                            .iter()
                            .find(|f| f.label().eq_ignore_ascii_case("location"))
                        {
                            sink.lock().unwrap().push(loc.value().to_text());
                        }
                    }
                }
            }
        });
        Ok(SsdpClient {
            transport,
            reply_endpoint,
            collected,
        })
    }

    /// Searches for `st`, returning the `LOCATION` URLs discovered
    /// within `wait`.
    ///
    /// # Errors
    ///
    /// Codec failures (never for the embedded spec).
    pub fn search(&self, st: &str, wait: Duration) -> Result<Vec<String>, MdlError> {
        self.collected.lock().unwrap().clear();
        let codec = ssdp_codec()?;
        let mut msearch = AbstractMessage::new("MSearch");
        msearch.set_field("Method", Value::from("M-SEARCH"));
        msearch.set_field("Target", Value::from("*"));
        msearch.set_field("Version", Value::from("HTTP/1.1"));
        msearch.set_field(
            "Headers",
            Value::Struct(vec![
                Field::new("HOST", Value::from("239.255.255.250:1900")),
                Field::new("MAN", Value::from("\"ssdp:discover\"")),
                Field::new("ST", Value::Str(st.to_owned())),
                Field::new("Reply-To", Value::Str(self.reply_endpoint.to_string())),
            ]),
        );
        msearch.set_field("Body", Value::from(""));
        let wire = codec.compose(&msearch)?;
        self.transport.send_multicast(SSDP_GROUP, &wire);
        std::thread::sleep(wait);
        Ok(self.collected.lock().unwrap().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssdp_codec_roundtrip() {
        let codec = ssdp_codec().unwrap();
        let wire =
            b"M-SEARCH * HTTP/1.1\r\nHOST: 239.255.255.250:1900\r\nST: urn:svc:Printing:1\r\n\r\n";
        let msg = codec.parse(wire).unwrap();
        assert_eq!(msg.name(), "MSearch");
        let headers = msg.get("Headers").unwrap().as_struct().unwrap();
        assert!(headers.iter().any(|f| f.label() == "ST"));
    }

    #[test]
    fn slp_codec_roundtrip() {
        let codec = slp_codec().unwrap();
        let mut rqst = AbstractMessage::new("SrvRqst");
        rqst.set_field("Version", Value::UInt(2));
        rqst.set_field("ServiceType", Value::Str("service:printer".into()));
        let wire = codec.compose(&rqst).unwrap();
        assert_eq!(wire[0], 2, "SLP version");
        assert_eq!(wire[1], 1, "SrvRqst function id");
        let back = codec.parse(&wire).unwrap();
        assert_eq!(back.name(), "SrvRqst");
        assert_eq!(
            back.get("ServiceType").unwrap().as_str(),
            Some("service:printer")
        );
    }

    #[test]
    fn slp_directory_answers_queries() {
        let transport = MemoryTransport::new();
        let mut net = NetworkEngine::new();
        net.register(Arc::new(transport));
        let directory = SlpDirectory::deploy(
            &net,
            &Endpoint::memory("slp-da"),
            HashMap::from([(
                "service:printer".to_owned(),
                vec!["service:printer://printsrv:515".to_owned()],
            )]),
        )
        .unwrap();
        let codec = slp_codec().unwrap();
        let mut rqst = AbstractMessage::new("SrvRqst");
        rqst.set_field("Version", Value::UInt(2));
        rqst.set_field("ServiceType", Value::Str("service:printer".into()));
        let mut conn = net.connect(directory.endpoint()).unwrap();
        conn.send(&codec.compose(&rqst).unwrap()).unwrap();
        let reply = codec
            .parse(&conn.receive_timeout(Duration::from_secs(2)).unwrap())
            .unwrap();
        assert_eq!(reply.name(), "SrvRply");
        let urls = reply.get("Urls").unwrap().as_array().unwrap();
        assert_eq!(urls.len(), 1);
        // Unknown type → empty reply.
        let mut rqst2 = AbstractMessage::new("SrvRqst");
        rqst2.set_field("Version", Value::UInt(2));
        rqst2.set_field("ServiceType", Value::Str("service:fax".into()));
        let mut conn2 = net.connect(directory.endpoint()).unwrap();
        conn2.send(&codec.compose(&rqst2).unwrap()).unwrap();
        let reply2 = codec
            .parse(&conn2.receive_timeout(Duration::from_secs(2)).unwrap())
            .unwrap();
        assert!(reply2.get("Urls").unwrap().as_array().unwrap().is_empty());
    }
}
