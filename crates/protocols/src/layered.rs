use starlink_mdl::{MdlError, MessageCodec};
use starlink_message::{AbstractMessage, Field, FieldPath, Value};
use std::sync::Arc;

/// How one inner message variant travels inside the outer protocol.
#[derive(Debug, Clone)]
pub struct LayerRoute {
    /// Inner message variant name (`MethodCall`, `SOAPRequest`,
    /// `GDataFeed`, …).
    pub inner: String,
    /// Outer message variant to wrap it in (`HTTPRequest`/`HTTPResponse`).
    pub outer_message: String,
    /// Outer fields set when absent (method, URI, version, headers,
    /// status code…).
    pub outer_defaults: Vec<(FieldPath, Value)>,
}

/// Composes an *outer* codec (HTTP) with an *inner* codec (an XML
/// dialect) carried in one of the outer message's fields.
///
/// SOAP, XML-RPC and the GData feed are all "XML over HTTP": Starlink's
/// architecture handles this by layering two MDL-driven codecs rather
/// than writing protocol-specific parsers. On parse, the outer message is
/// parsed first; if the designated body field holds a document the inner
/// codec recognises, the result is the inner message *merged with* the
/// outer fields (body removed). On compose, a message named after an
/// inner variant is composed with the inner codec and wrapped using its
/// [`LayerRoute`]; a message named after an outer variant passes through.
#[derive(Clone)]
pub struct LayeredCodec {
    outer: Arc<dyn MessageCodec>,
    inner: Arc<dyn MessageCodec>,
    body_field: String,
    routes: Vec<LayerRoute>,
    /// Union of inner and outer variant names, cached at construction so
    /// `message_names` hands out a slice without rebuilding.
    names: Vec<String>,
}

impl LayeredCodec {
    /// Creates a layered codec; `body_field` names the outer field
    /// carrying the inner document (`"Body"` for HTTP).
    pub fn new(
        outer: Arc<dyn MessageCodec>,
        inner: Arc<dyn MessageCodec>,
        body_field: impl Into<String>,
        routes: Vec<LayerRoute>,
    ) -> LayeredCodec {
        let mut names = inner.message_names().to_vec();
        names.extend(outer.message_names().iter().cloned());
        LayeredCodec {
            outer,
            inner,
            body_field: body_field.into(),
            routes,
            names,
        }
    }

    fn route(&self, inner_name: &str) -> Option<&LayerRoute> {
        self.routes.iter().find(|r| r.inner == inner_name)
    }
}

impl MessageCodec for LayeredCodec {
    fn parse(&self, data: &[u8]) -> Result<AbstractMessage, MdlError> {
        let outer = self.outer.parse(data)?;
        let body = outer
            .get(&self.body_field)
            .and_then(Value::as_str)
            .unwrap_or("");
        if body.trim().is_empty() {
            return Ok(outer);
        }
        match self.inner.parse(body.as_bytes()) {
            Ok(inner) => {
                // Merge: inner fields take priority; outer fields (minus
                // the body) are kept for binding rules that need them
                // (Method/RequestURI/Code).
                let mut merged = AbstractMessage::new(inner.name());
                for f in inner.fields() {
                    merged.push_field(f.clone());
                }
                for f in outer.fields() {
                    if f.label() != self.body_field && merged.get(f.label()).is_none() {
                        merged.push_field(f.clone());
                    }
                }
                Ok(merged)
            }
            // An unrecognised body stays opaque on the outer message.
            Err(_) => Ok(outer),
        }
    }

    fn compose(&self, msg: &AbstractMessage) -> Result<Vec<u8>, MdlError> {
        let mut out = Vec::new();
        self.compose_into(msg, &mut out)?;
        Ok(out)
    }

    fn compose_into(&self, msg: &AbstractMessage, out: &mut Vec<u8>) -> Result<(), MdlError> {
        match self.route(msg.name()) {
            None => self.outer.compose_into(msg, out),
            Some(route) => {
                let inner_bytes = self.inner.compose(msg)?;
                let inner_text = String::from_utf8(inner_bytes).map_err(|_| MdlError::NotUtf8 {
                    field: self.body_field.clone(),
                })?;
                let mut outer = AbstractMessage::new(&route.outer_message);
                // Carry over any outer-level fields present on the
                // message (Method/RequestURI set by the binding).
                for f in msg.fields() {
                    outer.push_field(f.clone());
                }
                for (path, value) in &route.outer_defaults {
                    if outer.get_path(path).is_err() {
                        outer
                            .set_path(path, value.clone())
                            .map_err(|e| MdlError::BadValue {
                                field: path.to_string(),
                                message: e.to_string(),
                            })?;
                    }
                }
                outer.set_field(&self.body_field, Value::Str(inner_text));
                self.outer.compose_into(&outer, out)
            }
        }
    }

    fn message_names(&self) -> &[String] {
        &self.names
    }
}

/// Standard HTTP defaults for a request route (`Version`, `Host` and
/// `Content-Type` headers).
pub fn http_request_defaults(host: &str) -> Vec<(FieldPath, Value)> {
    vec![
        (
            "Version".parse().expect("static path"),
            Value::Str("HTTP/1.1".into()),
        ),
        (
            "Headers".parse().expect("static path"),
            Value::Struct(vec![
                Field::new("Host", Value::Str(host.to_owned())),
                Field::new("Content-Type", Value::Str("text/xml".into())),
            ]),
        ),
    ]
}

/// Standard HTTP defaults for a 200 response route.
pub fn http_response_defaults() -> Vec<(FieldPath, Value)> {
    vec![
        (
            "Version".parse().expect("static path"),
            Value::Str("HTTP/1.1".into()),
        ),
        (
            "Code".parse().expect("static path"),
            Value::Str("200".into()),
        ),
        (
            "Reason".parse().expect("static path"),
            Value::Str("OK".into()),
        ),
        (
            "Headers".parse().expect("static path"),
            Value::Struct(vec![Field::new(
                "Content-Type",
                Value::Str("text/xml".into()),
            )]),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::http_codec;
    use starlink_mdl::MdlCodec;

    const INNER: &str = "\
<Dialect:xml>\n\
<Message:MethodCall>\n\
<Root:methodCall>\n\
<Text:MethodName=methodName>\n\
<End:Message>";

    fn layered() -> LayeredCodec {
        LayeredCodec::new(
            Arc::new(http_codec().expect("valid spec")),
            Arc::new(MdlCodec::from_text(INNER).expect("valid spec")),
            "Body",
            vec![LayerRoute {
                inner: "MethodCall".into(),
                outer_message: "HTTPRequest".into(),
                outer_defaults: {
                    let mut d = http_request_defaults("flickr.com");
                    d.push(("Method".parse().unwrap(), Value::Str("POST".into())));
                    d.push((
                        "RequestURI".parse().unwrap(),
                        Value::Str("/services/xmlrpc".into()),
                    ));
                    d
                },
            }],
        )
    }

    #[test]
    fn compose_wraps_inner_in_http_post() {
        let codec = layered();
        let mut msg = AbstractMessage::new("MethodCall");
        msg.set_field("MethodName", Value::from("flickr.photos.search"));
        let wire = codec.compose(&msg).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("POST /services/xmlrpc HTTP/1.1\r\n"));
        assert!(text.contains("Host: flickr.com"));
        assert!(text.contains("<methodName>flickr.photos.search</methodName>"));
        assert!(text.contains("Content-Length:"));
    }

    #[test]
    fn parse_merges_inner_and_outer_fields() {
        let codec = layered();
        let mut msg = AbstractMessage::new("MethodCall");
        msg.set_field("MethodName", Value::from("op"));
        let wire = codec.compose(&msg).unwrap();
        let back = codec.parse(&wire).unwrap();
        assert_eq!(back.name(), "MethodCall");
        assert_eq!(back.get("MethodName").unwrap().as_str(), Some("op"));
        // Outer fields survive for REST-style bindings.
        assert_eq!(back.get("Method").unwrap().as_str(), Some("POST"));
        assert!(back.get("Body").is_none());
    }

    #[test]
    fn bodyless_message_stays_outer() {
        let codec = layered();
        let wire = b"GET /photos HTTP/1.1\r\nHost: x\r\n\r\n";
        let msg = codec.parse(wire).unwrap();
        assert_eq!(msg.name(), "HTTPRequest");
        assert_eq!(msg.get("Method").unwrap().as_str(), Some("GET"));
    }

    #[test]
    fn unrecognised_body_stays_opaque() {
        let codec = layered();
        let wire = b"POST /x HTTP/1.1\r\nContent-Length: 12\r\n\r\n<unknown/>!!";
        let msg = codec.parse(wire).unwrap();
        assert_eq!(msg.name(), "HTTPRequest");
        assert!(msg
            .get("Body")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("unknown"));
    }

    #[test]
    fn outer_variant_composes_directly() {
        let codec = layered();
        let mut msg = AbstractMessage::new("HTTPRequest");
        msg.set_field("Method", Value::from("GET"));
        msg.set_field("RequestURI", Value::from("/a"));
        msg.set_field("Version", Value::from("HTTP/1.1"));
        msg.set_field("Headers", Value::Struct(vec![]));
        msg.set_field("Body", Value::from(""));
        let wire = codec.compose(&msg).unwrap();
        assert!(String::from_utf8(wire)
            .unwrap()
            .starts_with("GET /a HTTP/1.1"));
    }

    #[test]
    fn message_names_are_union() {
        let codec = layered();
        let names = codec.message_names();
        assert!(names.contains(&"MethodCall".to_owned()));
        assert!(names.contains(&"HTTPRequest".to_owned()));
    }
}
