//! SOAP 1.1 over HTTP POST (Fig. 4b).
//!
//! The envelope is described by an XML-dialect MDL; the HTTP carriage by
//! the text-dialect HTTP MDL; [`soap_codec`] layers the two. Replies
//! follow the WSDL convention of naming the response element
//! `<op>Response`, which is also how the codec's variants are
//! discriminated.

use crate::http::http_codec;
use crate::layered::{http_request_defaults, http_response_defaults, LayerRoute, LayeredCodec};
use starlink_automata::{Automaton, NetworkSemantics};
use starlink_core::{ActionRule, ParamRule, ProtocolBinding, ReplyAction};
use starlink_mdl::{MdlCodec, MdlError};
use starlink_message::{AbstractMessage, Value};
use std::sync::Arc;

/// The SOAP 1.1 envelope MDL (xml dialect). The reply variant is listed
/// first: its `Response`-suffix guard makes variant selection
/// deterministic.
pub const SOAP_MDL: &str = "\
# SOAP 1.1 envelopes (xml dialect)
<Dialect:xml>
<Message:SOAPReply>
<Root:soap:Envelope>
<RootAttr:xmlns:soap=http://schemas.xmlsoap.org/soap/envelope/>
<Name:MethodName=Body>
<Rule:MethodName*=Response>
<List:Params=Body/{MethodName}/*>
<End:Message>
<Message:SOAPRequest>
<Root:soap:Envelope>
<RootAttr:xmlns:soap=http://schemas.xmlsoap.org/soap/envelope/>
<Name:MethodName=Body>
<List:Params=Body/{MethodName}/*>
<End:Message>";

/// Compiles the plain envelope codec (no HTTP layer).
///
/// # Errors
///
/// Never fails for the embedded spec.
pub fn soap_envelope_codec() -> Result<MdlCodec, MdlError> {
    MdlCodec::from_text(SOAP_MDL)
}

/// Compiles the full SOAP-over-HTTP codec: envelopes travel in POST
/// bodies to `endpoint_path` on `host`.
///
/// # Errors
///
/// Never fails for the embedded specs.
pub fn soap_codec(host: &str, endpoint_path: &str) -> Result<LayeredCodec, MdlError> {
    let mut request_defaults = http_request_defaults(host);
    request_defaults.push((
        "Method".parse().expect("static path"),
        Value::Str("POST".into()),
    ));
    request_defaults.push((
        "RequestURI".parse().expect("static path"),
        Value::Str(endpoint_path.to_owned()),
    ));
    request_defaults.push((
        "Headers.SOAPAction".parse().expect("static path"),
        Value::Str("\"\"".into()),
    ));
    Ok(LayeredCodec::new(
        Arc::new(http_codec()?),
        Arc::new(soap_envelope_codec()?),
        "Body",
        vec![
            LayerRoute {
                inner: "SOAPRequest".into(),
                outer_message: "HTTPRequest".into(),
                outer_defaults: request_defaults,
            },
            LayerRoute {
                inner: "SOAPReply".into(),
                outer_message: "HTTPResponse".into(),
                outer_defaults: http_response_defaults(),
            },
        ],
    ))
}

/// The standard SOAP binding (Fig. 7 right): action label is the Body's
/// operation element name, parameters are its positional children, the
/// reply element carries the `Response` suffix.
pub fn soap_binding() -> ProtocolBinding {
    ProtocolBinding::new("SOAP", "SOAP.mdl", "SOAPRequest", "SOAPReply")
        .with_request_action(ActionRule::Field(
            "MethodName".parse().expect("static path"),
        ))
        .with_reply_action(ReplyAction::FieldWithSuffix {
            path: "MethodName".parse().expect("static path"),
            suffix: "Response".into(),
        })
        .with_params(
            ParamRule::PositionalArray("Params".parse().expect("static path")),
            ParamRule::PositionalArray("Params".parse().expect("static path")),
        )
}

/// The SOAP client k-colored automaton of Fig. 4b.
pub fn soap_client_automaton(color: u8) -> Automaton {
    let mut a = Automaton::new("SOAPClient", color);
    a.add_state("B1");
    a.add_state("B2");
    a.set_initial("B1").expect("state B1 was just added");
    a.add_final("B1").expect("state B1 was just added");
    a.add_send("B1", "B2", AbstractMessage::new("SOAPRequest"))
        .expect("states exist");
    a.add_receive("B2", "B1", AbstractMessage::new("SOAPReply"))
        .expect("states exist");
    a.set_network(color, NetworkSemantics::tcp_sync("SOAP.mdl"));
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_mdl::MessageCodec;

    #[test]
    fn request_envelope_over_http() {
        let codec = soap_codec("flickr.com", "/services/soap/").unwrap();
        let mut msg = AbstractMessage::new("SOAPRequest");
        msg.set_field("MethodName", Value::from("Plus"));
        msg.set_field(
            "Params",
            Value::Array(vec![Value::from("3"), Value::from("4")]),
        );
        let wire = codec.compose(&msg).unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.starts_with("POST /services/soap/ HTTP/1.1\r\n"));
        assert!(text.contains("<soap:Envelope"));
        assert!(text.contains("<Plus>"));
        let back = codec.parse(&wire).unwrap();
        assert_eq!(back.name(), "SOAPRequest");
        assert_eq!(back.get("MethodName").unwrap().as_str(), Some("Plus"));
    }

    #[test]
    fn reply_variant_selected_by_response_suffix() {
        let codec = soap_codec("h", "/s").unwrap();
        let mut msg = AbstractMessage::new("SOAPReply");
        msg.set_field("MethodName", Value::from("PlusResponse"));
        msg.set_field("Params", Value::Array(vec![Value::from("7")]));
        let wire = codec.compose(&msg).unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("<PlusResponse>"));
        let back = codec.parse(&wire).unwrap();
        assert_eq!(back.name(), "SOAPReply");
    }

    #[test]
    fn binding_round_trip_via_response_suffix() {
        let binding = soap_binding();
        let mut app_reply = AbstractMessage::new("Plus.reply");
        app_reply.set_field("z", Value::Int(7));
        let proto = binding.bind_reply(&app_reply, None).unwrap();
        assert_eq!(
            proto.get("MethodName").unwrap().as_str(),
            Some("PlusResponse")
        );
        let mut template = AbstractMessage::new("Plus.reply");
        template.set_field("z", Value::Null);
        let back = binding
            .unbind_reply(&proto, "Plus", Some(&template))
            .unwrap();
        assert_eq!(back.name(), "Plus.reply");
        assert_eq!(back.get("z").unwrap().as_int(), Some(7));
    }

    #[test]
    fn client_automaton_matches_fig4b() {
        let a = soap_client_automaton(2);
        a.validate().unwrap();
        let n = a.network(2).unwrap();
        assert_eq!(n.mdl, "SOAP.mdl");
        let labels: Vec<String> = a.transitions().iter().map(|t| t.action.label()).collect();
        assert_eq!(labels, vec!["!SOAPRequest", "?SOAPReply"]);
    }
}
