//! The Picasa-style REST protocol: HTTP verbs + GData Atom feeds
//! (paper Fig. 1: `GET PicasaBaseURL/all?q=tree&max-results=3`).
//!
//! Feed and entry documents are XML-dialect MDL messages layered over
//! HTTP. Requests are plain HTTP (GET with query parameters) except
//! `addComment`, which POSTs an `<entry>` document — the binding
//! expresses that with per-action parameter rules and message-variant
//! overrides.

use crate::http::http_codec;
use crate::layered::{http_request_defaults, http_response_defaults, LayerRoute, LayeredCodec};
use starlink_core::{ActionRule, ParamRule, ProtocolBinding, ReplyAction, RestRoute};
use starlink_mdl::{MdlCodec, MdlError};
use starlink_message::{Field, Value};

/// GData feed/entry MDL (xml dialect).
///
/// `GDataFeed` covers both photo feeds (entries with `content@src`) and
/// comment feeds (entries with text content); the optional item rules
/// extract whichever parts are present. `GDataEntry` is the POST body of
/// `addComment`; `GDataEntryReply` its echo in the response.
pub const GDATA_MDL: &str = "\
# GData Atom feed subset (xml dialect)
<Dialect:xml>
<Message:GDataFeed>
<Root:feed>
<Text:Title?=title>
<List:Entries=entry>
<ItemText:Entries.id=id>
<ItemText:Entries.title=title>
<ItemAttr:Entries.url=content@src>
<ItemText:Entries.content=content>
<ItemText:Entries.author=author/name>
<End:Message>
<Message:GDataEntry>
<Root:entry>
<Text:id?=id>
<Text:entry_id?=entry_id>
<Text:content?=content>
<Text:author?=author/name>
<End:Message>
<Message:GDataEntryReply>
<Root:entry>
<Text:id?=id>
<Text:content?=content>
<Text:author?=author/name>
<End:Message>";

/// Compiles the plain GData document codec (no HTTP layer).
///
/// # Errors
///
/// Never fails for the embedded spec.
pub fn gdata_document_codec() -> Result<MdlCodec, MdlError> {
    MdlCodec::from_text(GDATA_MDL)
}

/// Compiles the full REST codec: GData documents over HTTP against
/// `host`.
///
/// # Errors
///
/// Never fails for the embedded specs.
pub fn rest_codec(host: &str) -> Result<LayeredCodec, MdlError> {
    let mut entry_defaults = http_request_defaults(host);
    entry_defaults.push((
        "Method".parse().expect("static path"),
        Value::Str("POST".into()),
    ));
    entry_defaults.push((
        "RequestURI".parse().expect("static path"),
        Value::Str(COMMENTS_PATH.into()),
    ));
    Ok(LayeredCodec::new(
        std::sync::Arc::new(http_codec()?),
        std::sync::Arc::new(gdata_document_codec()?),
        "Body",
        vec![
            LayerRoute {
                inner: "GDataFeed".into(),
                outer_message: "HTTPResponse".into(),
                outer_defaults: http_response_defaults(),
            },
            LayerRoute {
                inner: "GDataEntry".into(),
                outer_message: "HTTPRequest".into(),
                outer_defaults: entry_defaults,
            },
            LayerRoute {
                inner: "GDataEntryReply".into(),
                outer_message: "HTTPResponse".into(),
                outer_defaults: http_response_defaults(),
            },
        ],
    ))
}

/// Route paths of the simulated Picasa API (DESIGN.md §2: our service
/// speaks the GData shapes of the paper's Fig. 1 at fixed paths).
pub const SEARCH_PATH: &str = "/data/feed/api/all";
/// Comment listing + posting path.
pub const COMMENTS_PATH: &str = "/data/feed/api/comments";

/// The standard REST binding for the Picasa-style API: actions route to
/// method+path, query-string parameters for GETs, an `<entry>` body for
/// `addComment`.
pub fn rest_binding() -> ProtocolBinding {
    let uri: starlink_message::FieldPath = "RequestURI".parse().expect("static path");
    ProtocolBinding::new("REST", "REST.mdl", "HTTPRequest", "GDataFeed")
        .with_request_action(ActionRule::Rest {
            method_field: "Method".parse().expect("static path"),
            uri_field: uri.clone(),
            routes: vec![
                RestRoute {
                    action: "picasa.photos.search".into(),
                    method: "GET".into(),
                    path: SEARCH_PATH.into(),
                },
                RestRoute {
                    action: "picasa.getComments".into(),
                    method: "GET".into(),
                    path: COMMENTS_PATH.into(),
                },
                RestRoute {
                    action: "picasa.addComment".into(),
                    method: "POST".into(),
                    path: COMMENTS_PATH.into(),
                },
            ],
        })
        .with_reply_action(ReplyAction::Correlated)
        .with_params(
            ParamRule::PerAction {
                rules: vec![("picasa.addComment".into(), ParamRule::NamedFields(None))],
                default: Box::new(ParamRule::Query { uri_field: uri }),
            },
            ParamRule::NamedFields(None),
        )
        .with_request_message_override("picasa.addComment", "GDataEntry")
        .with_reply_message_override("picasa.addComment.reply", "GDataEntryReply")
        .with_request_default(
            "Version".parse().expect("static path"),
            Value::Str("HTTP/1.1".into()),
        )
        .with_request_default(
            "Headers".parse().expect("static path"),
            Value::Struct(vec![Field::new(
                "Host",
                Value::Str("picasaweb.google.com".into()),
            )]),
        )
        .with_request_default(
            "Body".parse().expect("static path"),
            Value::Str(String::new()),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_mdl::MessageCodec;
    use starlink_message::AbstractMessage;

    #[test]
    fn search_request_is_plain_get_with_query() {
        let binding = rest_binding();
        let codec = rest_codec("picasaweb.google.com").unwrap();
        let mut app = AbstractMessage::new("picasa.photos.search");
        app.set_field("q", Value::from("tree"));
        app.set_field("max-results", Value::Int(3));
        let proto = binding.bind_request(&app).unwrap();
        let wire = codec.compose(&proto).unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        // Fig. 1's `GET PicasaBaseURL/all?q=tree&max-results=3`.
        assert!(text.starts_with("GET /data/feed/api/all?q=tree&max-results=3 HTTP/1.1"));
        // The service-side unbind recovers the parameters.
        let parsed = codec.parse(&wire).unwrap();
        let back = binding.unbind_request(&parsed, |_| None).unwrap();
        assert_eq!(back.name(), "picasa.photos.search");
        assert_eq!(back.get("q").unwrap().as_str(), Some("tree"));
    }

    #[test]
    fn feed_reply_roundtrip() {
        let codec = rest_codec("h").unwrap();
        let mut feed = AbstractMessage::new("GDataFeed");
        feed.set_field("Title", Value::from("Search Results"));
        feed.set_field(
            "Entries",
            Value::Array(vec![Value::Struct(vec![
                Field::new("id", Value::from("gphoto-1")),
                Field::new("title", Value::from("Tree")),
                Field::new("url", Value::from("http://p/1.jpg")),
            ])]),
        );
        let wire = codec.compose(&feed).unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK"));
        assert!(text.contains("<feed>"));
        assert!(text.contains("src=\"http://p/1.jpg\""));
        let back = codec.parse(&wire).unwrap();
        assert_eq!(back.name(), "GDataFeed");
        let entries = back.get("Entries").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn add_comment_posts_entry_body() {
        let binding = rest_binding();
        let codec = rest_codec("picasaweb.google.com").unwrap();
        let mut app = AbstractMessage::new("picasa.addComment");
        app.set_field("entry_id", Value::from("gphoto-1"));
        app.set_field("content", Value::from("great shot"));
        let proto = binding.bind_request(&app).unwrap();
        assert_eq!(proto.name(), "GDataEntry");
        let wire = codec.compose(&proto).unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        // Fig. 1's `addComment(entry) [POST PhotoURL, <entry></entry>]`.
        assert!(text.starts_with("POST /data/feed/api/comments HTTP/1.1"));
        assert!(text.contains("<entry>"));
        assert!(text.contains("<content>great shot</content>"));
        let parsed = codec.parse(&wire).unwrap();
        let back = binding.unbind_request(&parsed, |_| None).unwrap();
        assert_eq!(back.name(), "picasa.addComment");
        assert_eq!(back.get("content").unwrap().as_str(), Some("great shot"));
    }

    #[test]
    fn comment_feed_entries_have_text_content() {
        let codec = gdata_document_codec().unwrap();
        let wire = b"<feed><entry><id>c1</id><content>nice</content><author><name>bob</name></author></entry></feed>";
        let msg = codec.parse(wire).unwrap();
        let entries = msg.get("Entries").unwrap().as_array().unwrap();
        let fields = entries[0].as_struct().unwrap();
        let content = fields.iter().find(|f| f.label() == "content").unwrap();
        assert_eq!(content.value().as_str(), Some("nice"));
        let author = fields.iter().find(|f| f.label() == "author").unwrap();
        assert_eq!(author.value().as_str(), Some("bob"));
    }
}
