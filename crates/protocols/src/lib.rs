//! Concrete protocol stacks for the Starlink reproduction, built on MDL
//! specs and the network engine:
//!
//! * [`giop`] — GIOP/IIOP (CORBA's binary RPC protocol; Fig. 4a/5),
//! * [`http`] — HTTP/1.1 request/response as a text-dialect MDL,
//! * [`soap`] — SOAP 1.1 envelopes over HTTP POST (Fig. 4b),
//! * [`xmlrpc`] — XML-RPC `methodCall`/`methodResponse` over HTTP POST,
//! * [`gdata`] — the Picasa-style REST/GData feed protocol,
//! * [`LayeredCodec`] — composition of an outer (HTTP) codec with an
//!   inner (XML) codec carried in its body, so SOAP/XML-RPC/GData parse
//!   and compose through the same spec-driven machinery.
//!
//! Each protocol module exports its MDL spec text (a constant — the
//! deployable model), a codec constructor, the k-colored client automaton
//! of Fig. 4, and the standard [`ProtocolBinding`] mapping application
//! actions onto the protocol (Fig. 7).
//!
//! [`ProtocolBinding`]: starlink_core::ProtocolBinding

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod discovery;
pub mod gdata;
pub mod giop;
pub mod http;
mod layered;
pub mod soap;
pub mod xmlrpc;

pub use layered::{http_request_defaults, http_response_defaults, LayerRoute, LayeredCodec};
