//! HTTP/1.1 as a text-dialect MDL: the substrate under REST, SOAP and
//! XML-RPC.

use starlink_mdl::{MdlCodec, MdlError};
use starlink_net::{HttpFraming, TcpTransport, Transport};
use std::sync::Arc;

/// The HTTP/1.1 MDL spec (text dialect): one request variant, one
/// response variant.
pub const HTTP_MDL: &str = "\
# HTTP/1.1 message formats (text dialect)
<Dialect:text>
<Message:HTTPRequest>
<Request:Method RequestURI Version>
<Rule:Version^=HTTP/>
<Headers:Headers>
<Body:Body>
<End:Message>
<Message:HTTPResponse>
<Status:Version Code Reason+>
<Rule:Version^=HTTP/>
<Headers:Headers>
<Body:Body>
<End:Message>";

/// Compiles the HTTP codec.
///
/// # Errors
///
/// Never fails for the embedded spec; the `Result` guards against future
/// spec edits.
pub fn http_codec() -> Result<MdlCodec, MdlError> {
    MdlCodec::from_text(HTTP_MDL)
}

/// A TCP transport cutting streams at HTTP message boundaries — register
/// it under the `tcp` scheme (or an alias) when a color speaks raw HTTP.
pub fn http_transport() -> Arc<dyn Transport> {
    Arc::new(TcpTransport::with_framing(Arc::new(HttpFraming::default())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_mdl::MessageCodec;
    use starlink_message::{AbstractMessage, Value};

    #[test]
    fn request_roundtrip() {
        let codec = http_codec().unwrap();
        let mut msg = AbstractMessage::new("HTTPRequest");
        msg.set_field("Method", Value::from("GET"));
        msg.set_field("RequestURI", Value::from("/data/feed/api/all?q=tree"));
        msg.set_field("Version", Value::from("HTTP/1.1"));
        msg.set_field("Headers", Value::Struct(vec![]));
        msg.set_field("Body", Value::from(""));
        let wire = codec.compose(&msg).unwrap();
        let back = codec.parse(&wire).unwrap();
        assert_eq!(back.name(), "HTTPRequest");
        assert_eq!(
            back.get("RequestURI").unwrap().as_str(),
            Some("/data/feed/api/all?q=tree")
        );
    }

    #[test]
    fn response_distinguished_from_request() {
        let codec = http_codec().unwrap();
        let wire = b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n";
        let msg = codec.parse(wire).unwrap();
        assert_eq!(msg.name(), "HTTPResponse");
        assert_eq!(msg.get("Code").unwrap().as_str(), Some("404"));
        assert_eq!(msg.get("Reason").unwrap().as_str(), Some("Not Found"));
    }
}
