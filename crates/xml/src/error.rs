use std::fmt;

/// Errors produced while parsing or writing XML.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum XmlError {
    /// The input ended in the middle of a construct.
    UnexpectedEof {
        /// What the parser was reading when input ran out.
        context: &'static str,
    },
    /// A syntactic error at a byte offset.
    Syntax {
        /// Human-readable description.
        message: String,
        /// Byte offset in the input.
        offset: usize,
    },
    /// A closing tag did not match the open element.
    MismatchedTag {
        /// The element that was open.
        expected: String,
        /// The closing tag actually found.
        found: String,
        /// Byte offset of the closing tag.
        offset: usize,
    },
    /// An undefined entity reference such as `&nbsp;`.
    UnknownEntity {
        /// The entity name without `&`/`;`.
        name: String,
    },
    /// The document contained no root element.
    NoRootElement,
    /// Content found after the root element closed.
    TrailingContent {
        /// Byte offset of the trailing content.
        offset: usize,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while reading {context}")
            }
            XmlError::Syntax { message, offset } => {
                write!(f, "xml syntax error at offset {offset}: {message}")
            }
            XmlError::MismatchedTag {
                expected,
                found,
                offset,
            } => write!(
                f,
                "mismatched closing tag at offset {offset}: expected </{expected}>, found </{found}>"
            ),
            XmlError::UnknownEntity { name } => write!(f, "unknown entity `&{name};`"),
            XmlError::NoRootElement => write!(f, "document has no root element"),
            XmlError::TrailingContent { offset } => {
                write!(f, "content after root element at offset {offset}")
            }
        }
    }
}

impl std::error::Error for XmlError {}
