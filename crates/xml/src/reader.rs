use crate::dom::Attribute;
use crate::error::XmlError;
use crate::escape::unescape;

/// One parse event produced by [`Reader::next_event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `<?xml version="1.0" ...?>` — the raw content between `<?xml` and `?>`.
    Declaration(String),
    /// An opening tag. `self_closing` is `true` for `<tag/>`.
    StartElement {
        /// Tag name, prefix included (`soap:Envelope`).
        name: String,
        /// Attributes in document order, values unescaped.
        attributes: Vec<Attribute>,
        /// Whether the tag closed itself (`<br/>`).
        self_closing: bool,
    },
    /// A closing tag `</name>`.
    EndElement {
        /// Tag name.
        name: String,
    },
    /// Character data between tags, entities resolved.
    Text(String),
    /// `<![CDATA[...]]>` content, verbatim.
    CData(String),
    /// `<!-- ... -->` content, verbatim.
    Comment(String),
    /// `<?target ...?>` other than the XML declaration.
    ProcessingInstruction(String),
    /// End of input.
    Eof,
}

/// A streaming pull parser over an in-memory XML string.
///
/// # Example
///
/// ```
/// use starlink_xml::{Event, Reader};
///
/// let mut r = Reader::new("<a x='1'>hi</a>");
/// assert!(matches!(r.next_event()?, Event::StartElement { .. }));
/// assert_eq!(r.next_event()?, Event::Text("hi".into()));
/// assert_eq!(r.next_event()?, Event::EndElement { name: "a".into() });
/// assert_eq!(r.next_event()?, Event::Eof);
/// # Ok::<(), starlink_xml::XmlError>(())
/// ```
#[derive(Debug)]
pub struct Reader<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over the given input.
    pub fn new(input: &'a str) -> Reader<'a> {
        Reader { input, pos: 0 }
    }

    /// Current byte offset into the input.
    pub fn offset(&self) -> usize {
        self.pos
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn error(&self, message: impl Into<String>) -> XmlError {
        XmlError::Syntax {
            message: message.into(),
            offset: self.pos,
        }
    }

    /// Pulls the next event.
    ///
    /// # Errors
    ///
    /// Returns [`XmlError`] on malformed input; the reader should not be
    /// used again after an error.
    pub fn next_event(&mut self) -> Result<Event, XmlError> {
        if self.rest().is_empty() {
            return Ok(Event::Eof);
        }
        if self.rest().starts_with('<') {
            self.read_markup()
        } else {
            self.read_text()
        }
    }

    fn read_text(&mut self) -> Result<Event, XmlError> {
        let rest = self.rest();
        let end = rest.find('<').unwrap_or(rest.len());
        let raw = &rest[..end];
        self.bump(end);
        Ok(Event::Text(unescape(raw)?))
    }

    fn read_markup(&mut self) -> Result<Event, XmlError> {
        let rest = self.rest();
        if let Some(body) = rest.strip_prefix("<!--") {
            let end = body
                .find("-->")
                .ok_or(XmlError::UnexpectedEof { context: "comment" })?;
            let text = body[..end].to_owned();
            self.bump(4 + end + 3);
            return Ok(Event::Comment(text));
        }
        if let Some(body) = rest.strip_prefix("<![CDATA[") {
            let end = body.find("]]>").ok_or(XmlError::UnexpectedEof {
                context: "CDATA section",
            })?;
            let text = body[..end].to_owned();
            self.bump(9 + end + 3);
            return Ok(Event::CData(text));
        }
        if rest.starts_with("<!") {
            // DOCTYPE or other declaration: skip to matching '>'.
            // (External DTD subsets are intentionally not processed.)
            let end = rest.find('>').ok_or(XmlError::UnexpectedEof {
                context: "markup declaration",
            })?;
            self.bump(end + 1);
            return self.next_event();
        }
        if let Some(body) = rest.strip_prefix("<?") {
            let end = body.find("?>").ok_or(XmlError::UnexpectedEof {
                context: "processing instruction",
            })?;
            let text = body[..end].to_owned();
            self.bump(2 + end + 2);
            return if text.starts_with("xml") {
                Ok(Event::Declaration(text))
            } else {
                Ok(Event::ProcessingInstruction(text))
            };
        }
        if let Some(body) = rest.strip_prefix("</") {
            let end = body.find('>').ok_or(XmlError::UnexpectedEof {
                context: "closing tag",
            })?;
            let name = body[..end].trim().to_owned();
            if name.is_empty() {
                return Err(self.error("empty closing tag"));
            }
            self.bump(2 + end + 1);
            return Ok(Event::EndElement { name });
        }
        self.read_start_tag()
    }

    fn read_start_tag(&mut self) -> Result<Event, XmlError> {
        debug_assert!(self.rest().starts_with('<'));
        self.bump(1);
        let name = self.read_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_whitespace();
            let rest = self.rest();
            if rest.starts_with("/>") {
                self.bump(2);
                return Ok(Event::StartElement {
                    name,
                    attributes,
                    self_closing: true,
                });
            }
            if rest.starts_with('>') {
                self.bump(1);
                return Ok(Event::StartElement {
                    name,
                    attributes,
                    self_closing: false,
                });
            }
            if rest.is_empty() {
                return Err(XmlError::UnexpectedEof {
                    context: "start tag",
                });
            }
            let attr_name = self.read_name()?;
            self.skip_whitespace();
            if !self.rest().starts_with('=') {
                return Err(self.error(format!("expected `=` after attribute `{attr_name}`")));
            }
            self.bump(1);
            self.skip_whitespace();
            let quote = self.rest().chars().next().ok_or(XmlError::UnexpectedEof {
                context: "attribute value",
            })?;
            if quote != '"' && quote != '\'' {
                return Err(self.error("attribute value must be quoted"));
            }
            self.bump(1);
            let rest = self.rest();
            let end = rest.find(quote).ok_or(XmlError::UnexpectedEof {
                context: "attribute value",
            })?;
            let raw = &rest[..end];
            self.bump(end + 1);
            attributes.push(Attribute {
                name: attr_name,
                value: unescape(raw)?,
            });
        }
    }

    fn read_name(&mut self) -> Result<String, XmlError> {
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| c.is_whitespace() || matches!(c, '>' | '/' | '='))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.error("expected a name"));
        }
        let name = rest[..end].to_owned();
        self.bump(end);
        Ok(name)
    }

    fn skip_whitespace(&mut self) {
        let rest = self.rest();
        let n = rest.len() - rest.trim_start().len();
        self.bump(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Vec<Event> {
        let mut r = Reader::new(input);
        let mut out = Vec::new();
        loop {
            let e = r.next_event().unwrap();
            if e == Event::Eof {
                return out;
            }
            out.push(e);
        }
    }

    #[test]
    fn simple_document() {
        let evs = events("<a><b>x</b></a>");
        assert_eq!(evs.len(), 5);
        assert!(matches!(&evs[0], Event::StartElement { name, .. } if name == "a"));
        assert_eq!(evs[2], Event::Text("x".into()));
        assert_eq!(evs[4], Event::EndElement { name: "a".into() });
    }

    #[test]
    fn attributes_both_quote_styles() {
        let evs = events(r#"<tag a="1" b='two' c="x &amp; y"/>"#);
        match &evs[0] {
            Event::StartElement {
                attributes,
                self_closing,
                ..
            } => {
                assert!(*self_closing);
                assert_eq!(attributes.len(), 3);
                assert_eq!(attributes[1].value, "two");
                assert_eq!(attributes[2].value, "x & y");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn declaration_and_pi() {
        let evs = events("<?xml version=\"1.0\"?><?style sheet?><r/>");
        assert!(matches!(&evs[0], Event::Declaration(d) if d.starts_with("xml")));
        assert!(matches!(&evs[1], Event::ProcessingInstruction(p) if p.starts_with("style")));
    }

    #[test]
    fn cdata_preserved_verbatim() {
        let evs = events("<r><![CDATA[a < b & c]]></r>");
        assert_eq!(evs[1], Event::CData("a < b & c".into()));
    }

    #[test]
    fn comments_surface() {
        let evs = events("<r><!-- note --></r>");
        assert_eq!(evs[1], Event::Comment(" note ".into()));
    }

    #[test]
    fn doctype_is_skipped() {
        let evs = events("<!DOCTYPE html><r/>");
        assert!(matches!(&evs[0], Event::StartElement { name, .. } if name == "r"));
    }

    #[test]
    fn text_entities_resolved() {
        let evs = events("<r>a &lt; b</r>");
        assert_eq!(evs[1], Event::Text("a < b".into()));
    }

    #[test]
    fn truncated_inputs_error() {
        assert!(Reader::new("<a").next_event().is_err());
        assert!(Reader::new("<!-- x").next_event().is_err());
        assert!(Reader::new("<![CDATA[x").next_event().is_err());
        assert!(Reader::new("<a x=>").next_event().is_err());
        assert!(Reader::new("<a x=1>").next_event().is_err());
        assert!(Reader::new("<a x=\"1>").next_event().is_err());
    }

    #[test]
    fn namespaced_names_pass_through() {
        let evs = events("<soap:Envelope xmlns:soap=\"http://s\"/>");
        match &evs[0] {
            Event::StartElement {
                name, attributes, ..
            } => {
                assert_eq!(name, "soap:Envelope");
                assert_eq!(attributes[0].name, "xmlns:soap");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
