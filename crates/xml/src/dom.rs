use crate::error::XmlError;
use crate::reader::{Event, Reader};
use std::fmt;

/// A name/value attribute pair (value stored unescaped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, prefix included.
    pub name: String,
    /// Unescaped attribute value.
    pub value: String,
}

/// A child node of an element.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// Character data (entities already resolved; CDATA merged in).
    Text(String),
}

impl Node {
    /// The node as an element, if it is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        }
    }
}

/// An XML element: name, ordered attributes, ordered children.
///
/// The local name matching used by [`Element::find`]/[`Element::select`]
/// ignores namespace prefixes, so `find("Body")` matches `<soap:Body>` —
/// exactly the looseness the Starlink message parsers need when different
/// SOAP stacks choose different prefixes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Element {
    /// Tag name, prefix included.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<Attribute>,
    /// Children in document order.
    pub children: Vec<Node>,
}

/// Strips an optional `prefix:` from a tag or attribute name.
pub(crate) fn local_name(name: &str) -> &str {
    match name.rfind(':') {
        Some(i) => &name[i + 1..],
        None => name,
    }
}

impl Element {
    /// Creates an element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Element {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder-style: adds an attribute.
    #[must_use]
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Element {
        self.set_attr(name, value);
        self
    }

    /// Builder-style: adds a child element.
    #[must_use]
    pub fn with_child(mut self, child: Element) -> Element {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder-style: adds a text child.
    #[must_use]
    pub fn with_text(mut self, text: impl Into<String>) -> Element {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Upserts an attribute by exact name.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        if let Some(a) = self.attributes.iter_mut().find(|a| a.name == name) {
            a.value = value;
        } else {
            self.attributes.push(Attribute { name, value });
        }
    }

    /// Attribute lookup by name; falls back to local-name matching.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|a| a.name == name)
            .or_else(|| self.attributes.iter().find(|a| local_name(&a.name) == name))
            .map(|a| a.value.as_str())
    }

    /// The element's local name (prefix stripped).
    pub fn local_name(&self) -> &str {
        local_name(&self.name)
    }

    /// Concatenated text of all descendant text nodes.
    pub fn text(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out
    }

    fn collect_text(&self, out: &mut String) {
        for child in &self.children {
            match child {
                Node::Text(t) => out.push_str(t),
                Node::Element(e) => e.collect_text(out),
            }
        }
    }

    /// Child *elements* in document order.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// First direct child element whose local name matches.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.local_name() == name)
    }

    /// First descendant element (depth-first, self excluded) whose local
    /// name matches.
    pub fn find(&self, name: &str) -> Option<&Element> {
        for e in self.child_elements() {
            if e.local_name() == name {
                return Some(e);
            }
            if let Some(found) = e.find(name) {
                return Some(found);
            }
        }
        None
    }

    /// All descendant elements (depth-first) whose local name matches.
    pub fn find_all<'e>(&'e self, name: &'e str) -> Vec<&'e Element> {
        let mut out = Vec::new();
        self.find_all_into(name, &mut out);
        out
    }

    fn find_all_into<'e>(&'e self, name: &str, out: &mut Vec<&'e Element>) {
        for e in self.child_elements() {
            if e.local_name() == name {
                out.push(e);
            }
            e.find_all_into(name, out);
        }
    }

    /// Resolves a `/`-separated path of local names from this element:
    /// `select("Body/add/x")` walks direct children level by level.
    /// A `*` step matches any child element.
    pub fn select(&self, path: &str) -> Option<&Element> {
        let mut current = self;
        for step in path.split('/').filter(|s| !s.is_empty()) {
            current = if step == "*" {
                current.child_elements().next()?
            } else {
                current.child(step)?
            };
        }
        Some(current)
    }

    /// Parses a document and returns its root element.
    ///
    /// # Errors
    ///
    /// Returns [`XmlError`] on malformed input, a missing root, or
    /// trailing non-whitespace content.
    pub fn parse(input: &str) -> Result<Element, XmlError> {
        let mut reader = Reader::new(input);
        // Skip prolog.
        let root = loop {
            match reader.next_event()? {
                Event::Declaration(_) | Event::ProcessingInstruction(_) | Event::Comment(_) => {}
                Event::Text(t) if t.trim().is_empty() => {}
                Event::StartElement {
                    name,
                    attributes,
                    self_closing,
                } => {
                    let mut el = Element {
                        name,
                        attributes,
                        children: Vec::new(),
                    };
                    if !self_closing {
                        read_children(&mut reader, &mut el)?;
                    }
                    break el;
                }
                Event::Eof => return Err(XmlError::NoRootElement),
                _ => {
                    return Err(XmlError::Syntax {
                        message: "unexpected content before root element".into(),
                        offset: reader.offset(),
                    })
                }
            }
        };
        // Only whitespace/comments may follow.
        loop {
            match reader.next_event()? {
                Event::Eof => return Ok(root),
                Event::Text(t) if t.trim().is_empty() => {}
                Event::Comment(_) | Event::ProcessingInstruction(_) => {}
                _ => {
                    return Err(XmlError::TrailingContent {
                        offset: reader.offset(),
                    })
                }
            }
        }
    }
}

fn read_children(reader: &mut Reader<'_>, parent: &mut Element) -> Result<(), XmlError> {
    loop {
        match reader.next_event()? {
            Event::StartElement {
                name,
                attributes,
                self_closing,
            } => {
                let mut el = Element {
                    name,
                    attributes,
                    children: Vec::new(),
                };
                if !self_closing {
                    read_children(reader, &mut el)?;
                }
                parent.children.push(Node::Element(el));
            }
            Event::EndElement { name } => {
                if name != parent.name {
                    return Err(XmlError::MismatchedTag {
                        expected: parent.name.clone(),
                        found: name,
                        offset: reader.offset(),
                    });
                }
                return Ok(());
            }
            Event::Text(t) => {
                if !t.is_empty() {
                    parent.children.push(Node::Text(t));
                }
            }
            Event::CData(t) => parent.children.push(Node::Text(t)),
            Event::Comment(_) | Event::ProcessingInstruction(_) | Event::Declaration(_) => {}
            Event::Eof => {
                return Err(XmlError::UnexpectedEof {
                    context: "element content",
                })
            }
        }
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_nested_document() {
        let e = Element::parse("<a><b attr=\"v\"><c>text</c></b></a>").unwrap();
        assert_eq!(e.name, "a");
        let b = e.child("b").unwrap();
        assert_eq!(b.attr("attr"), Some("v"));
        assert_eq!(b.child("c").unwrap().text(), "text");
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(matches!(
            Element::parse("<a><b></a></b>"),
            Err(XmlError::MismatchedTag { .. })
        ));
    }

    #[test]
    fn trailing_content_rejected() {
        assert!(matches!(
            Element::parse("<a/>extra"),
            Err(XmlError::TrailingContent { .. })
        ));
        // Trailing whitespace and comments are fine.
        assert!(Element::parse("<a/> <!-- ok --> ").is_ok());
    }

    #[test]
    fn empty_input_has_no_root() {
        assert_eq!(Element::parse("  "), Err(XmlError::NoRootElement));
    }

    #[test]
    fn local_name_matching() {
        let e = Element::parse(
            "<soap:Envelope><soap:Body><m:add><x>1</x></m:add></soap:Body></soap:Envelope>",
        )
        .unwrap();
        assert_eq!(e.local_name(), "Envelope");
        let body = e.find("Body").unwrap();
        let add = body.child("add").unwrap();
        assert_eq!(add.child("x").unwrap().text(), "1");
        assert_eq!(e.select("Body/add/x").unwrap().text(), "1");
    }

    #[test]
    fn select_with_wildcard() {
        let e = Element::parse("<r><any><inner>5</inner></any></r>").unwrap();
        assert_eq!(e.select("*/inner").unwrap().text(), "5");
        assert!(e.select("missing/inner").is_none());
    }

    #[test]
    fn find_all_collects_in_document_order() {
        let e =
            Element::parse("<feed><entry>1</entry><x><entry>2</entry></x><entry>3</entry></feed>")
                .unwrap();
        let entries = e.find_all("entry");
        let texts: Vec<String> = entries.iter().map(|e| e.text()).collect();
        assert_eq!(texts, vec!["1", "2", "3"]);
    }

    #[test]
    fn cdata_becomes_text() {
        let e = Element::parse("<r><![CDATA[a < b]]></r>").unwrap();
        assert_eq!(e.text(), "a < b");
    }

    #[test]
    fn attr_local_name_fallback() {
        let e = Element::parse("<r ns:type=\"photo\"/>").unwrap();
        assert_eq!(e.attr("ns:type"), Some("photo"));
        assert_eq!(e.attr("type"), Some("photo"));
        assert_eq!(e.attr("missing"), None);
    }

    #[test]
    fn builders_compose() {
        let e = Element::new("params")
            .with_child(Element::new("param").with_text("1"))
            .with_attr("n", "1");
        assert_eq!(e.child("param").unwrap().text(), "1");
        assert_eq!(e.attr("n"), Some("1"));
    }

    #[test]
    fn set_attr_upserts() {
        let mut e = Element::new("x");
        e.set_attr("a", "1");
        e.set_attr("a", "2");
        assert_eq!(e.attributes.len(), 1);
        assert_eq!(e.attr("a"), Some("2"));
    }
}
