use crate::error::XmlError;

/// Escapes text content for inclusion in an XML document: `&`, `<`, `>`.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes an attribute value (double-quote delimited): additionally
/// escapes `"` and normalisation-sensitive whitespace.
pub fn escape_attr(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            _ => out.push(c),
        }
    }
    out
}

/// Resolves the five predefined entities and numeric character references.
///
/// # Errors
///
/// Returns [`XmlError::UnknownEntity`] for undefined named entities and
/// [`XmlError::Syntax`]-free behaviour otherwise: an unterminated `&...`
/// run is treated as an unknown entity as well.
pub fn unescape(text: &str) -> Result<String, XmlError> {
    if !text.contains('&') {
        return Ok(text.to_owned());
    }
    let mut out = String::with_capacity(text.len());
    let mut chars = text.char_indices();
    while let Some((i, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let rest = &text[i + 1..];
        let semi = rest.find(';').ok_or_else(|| XmlError::UnknownEntity {
            name: rest.chars().take(12).collect(),
        })?;
        let name = &rest[..semi];
        let resolved = match name {
            "amp" => '&',
            "lt" => '<',
            "gt" => '>',
            "quot" => '"',
            "apos" => '\'',
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let cp =
                    u32::from_str_radix(&name[2..], 16).map_err(|_| XmlError::UnknownEntity {
                        name: name.to_owned(),
                    })?;
                char::from_u32(cp).ok_or_else(|| XmlError::UnknownEntity {
                    name: name.to_owned(),
                })?
            }
            _ if name.starts_with('#') => {
                let cp: u32 = name[1..].parse().map_err(|_| XmlError::UnknownEntity {
                    name: name.to_owned(),
                })?;
                char::from_u32(cp).ok_or_else(|| XmlError::UnknownEntity {
                    name: name.to_owned(),
                })?
            }
            _ => {
                return Err(XmlError::UnknownEntity {
                    name: name.to_owned(),
                })
            }
        };
        out.push(resolved);
        // Skip over the consumed entity body.
        for _ in 0..semi + 1 {
            chars.next();
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrip() {
        let original = r#"a < b && c > "d" 'e'"#;
        assert_eq!(unescape(&escape(original)).unwrap(), original);
        assert_eq!(unescape(&escape_attr(original)).unwrap(), original);
    }

    #[test]
    fn escapes_minimum_set() {
        assert_eq!(escape("a&b<c>d"), "a&amp;b&lt;c&gt;d");
        assert_eq!(escape_attr("say \"hi\""), "say &quot;hi&quot;");
    }

    #[test]
    fn numeric_references() {
        assert_eq!(unescape("&#65;&#x42;&#x63;").unwrap(), "ABc");
        assert_eq!(unescape("caf&#233;").unwrap(), "café");
    }

    #[test]
    fn unknown_entities_error() {
        assert!(matches!(
            unescape("&nbsp;"),
            Err(XmlError::UnknownEntity { .. })
        ));
        assert!(matches!(
            unescape("a&b"),
            Err(XmlError::UnknownEntity { .. })
        ));
        assert!(matches!(
            unescape("&#xZZ;"),
            Err(XmlError::UnknownEntity { .. })
        ));
        assert!(matches!(
            unescape("&#1114112;"), // beyond char::MAX
            Err(XmlError::UnknownEntity { .. })
        ));
    }

    #[test]
    fn plain_text_fast_path() {
        assert_eq!(unescape("no entities here").unwrap(), "no entities here");
    }
}
