use crate::dom::{Element, Node};
use crate::escape::{escape, escape_attr};
use std::fmt::Write;

impl Element {
    /// Serialises the element to compact XML (no added whitespace).
    ///
    /// Text is entity-escaped; attribute values are quote-escaped. The
    /// output round-trips through [`Element::parse`].
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Serialises to an indented form for logs and docs (2-space indent).
    ///
    /// Elements whose only child is text stay on one line; mixed content
    /// falls back to compact form to avoid changing its meaning.
    pub fn to_pretty_xml(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Serialises with an `<?xml version="1.0"?>` declaration prefix.
    pub fn to_document(&self) -> String {
        let mut out = String::new();
        self.write_document_into(&mut out);
        out
    }

    /// Serialises as [`Element::to_document`] into a caller-provided
    /// buffer, clearing it first and reusing its capacity.
    pub fn write_document_into(&self, out: &mut String) {
        out.clear();
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        self.write_compact(out);
    }

    fn write_open_tag(&self, out: &mut String, self_close: bool) {
        out.push('<');
        out.push_str(&self.name);
        for attr in &self.attributes {
            let _ = write!(out, " {}=\"{}\"", attr.name, escape_attr(&attr.value));
        }
        if self_close {
            out.push_str("/>");
        } else {
            out.push('>');
        }
    }

    fn write_compact(&self, out: &mut String) {
        if self.children.is_empty() {
            self.write_open_tag(out, true);
            return;
        }
        self.write_open_tag(out, false);
        for child in &self.children {
            match child {
                Node::Text(t) => out.push_str(&escape(t)),
                Node::Element(e) => e.write_compact(out),
            }
        }
        let _ = write!(out, "</{}>", self.name);
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        out.push_str(&pad);
        if self.children.is_empty() {
            self.write_open_tag(out, true);
            out.push('\n');
            return;
        }
        let only_text = self.children.iter().all(|c| matches!(c, Node::Text(_)));
        let has_text = self.children.iter().any(|c| matches!(c, Node::Text(_)));
        if only_text {
            self.write_open_tag(out, false);
            for child in &self.children {
                if let Node::Text(t) = child {
                    out.push_str(&escape(t));
                }
            }
            let _ = writeln!(out, "</{}>", self.name);
            return;
        }
        if has_text {
            // Mixed content: whitespace would alter meaning; stay compact.
            self.write_compact(out);
            out.push('\n');
            return;
        }
        self.write_open_tag(out, false);
        out.push('\n');
        for child in &self.children {
            if let Node::Element(e) = child {
                e.write_pretty(out, depth + 1);
            }
        }
        let _ = writeln!(out, "{pad}</{}>", self.name);
    }
}

#[cfg(test)]
mod tests {

    use crate::dom::Element;

    #[test]
    fn compact_roundtrip() {
        let src = "<a x=\"1 &amp; 2\"><b>t &lt; u</b><c/></a>";
        let e = Element::parse(src).unwrap();
        assert_eq!(e.to_xml(), src);
    }

    #[test]
    fn document_has_declaration() {
        let e = Element::new("r");
        assert!(e.to_document().starts_with("<?xml version=\"1.0\""));
        assert!(Element::parse(&e.to_document()).is_ok());
    }

    #[test]
    fn pretty_indents_nested_elements() {
        let e = Element::parse("<a><b><c>1</c></b></a>").unwrap();
        let pretty = e.to_pretty_xml();
        assert_eq!(pretty, "<a>\n  <b>\n    <c>1</c>\n  </b>\n</a>\n");
        // Pretty output still parses to an equivalent tree (text-only leaf
        // content preserved).
        let re = Element::parse(&pretty).unwrap();
        assert_eq!(re.select("b/c").unwrap().text(), "1");
    }

    #[test]
    fn mixed_content_stays_compact() {
        let e = Element::parse("<p>hello <b>world</b></p>").unwrap();
        let pretty = e.to_pretty_xml();
        assert_eq!(pretty, "<p>hello <b>world</b></p>\n");
    }

    #[test]
    fn attribute_quoting_in_output() {
        let e = Element::new("x").with_attr("a", "say \"hi\" <now>");
        let xml = e.to_xml();
        let re = Element::parse(&xml).unwrap();
        assert_eq!(re.attr("a"), Some("say \"hi\" <now>"));
    }
}
