//! Minimal XML substrate for the Starlink reproduction.
//!
//! The Starlink case study bridges SOAP, XML-RPC and the Picasa GData feed —
//! all XML wire formats. Rather than pulling an external dependency, this
//! crate implements the small XML subset those protocols need, from scratch:
//!
//! * a streaming [`Reader`] producing [`Event`]s,
//! * a [`Element`] DOM with ordered attributes and children,
//! * a writer ([`Element::to_xml`] / [`Element::to_pretty_xml`]),
//! * entity escaping/unescaping ([`escape`], [`unescape`]),
//! * simple descendant selection ([`Element::find`], [`Element::find_all`],
//!   [`Element::select`]) with namespace-prefix-insensitive matching.
//!
//! Supported: elements, attributes (single or double quoted), text, CDATA,
//! comments, processing instructions, the XML declaration, the five
//! predefined entities and decimal/hex character references.
//! Not supported (not needed by any protocol here): DTDs, external
//! entities (a deliberate security exclusion), and full namespace URI
//! resolution.
//!
//! # Example
//!
//! ```
//! use starlink_xml::Element;
//!
//! let doc = Element::parse("<methodCall><methodName>add</methodName></methodCall>")?;
//! assert_eq!(doc.find("methodName").unwrap().text(), "add");
//! # Ok::<(), starlink_xml::XmlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dom;
mod error;
mod escape;
mod reader;
mod writer;

pub use dom::{Attribute, Element, Node};
pub use error::XmlError;
pub use escape::{escape, escape_attr, unescape};
pub use reader::{Event, Reader};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, XmlError>;
