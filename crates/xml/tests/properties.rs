//! Property-based tests for the XML substrate: arbitrary trees survive
//! the write→parse round trip; escaping is lossless.

use proptest::prelude::*;
use starlink_xml::{escape, escape_attr, unescape, Element, Node};

fn tag_name() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_-]{0,8}"
}

/// Text content without raw control characters (XML cannot carry them).
fn text_content() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 <>&\"'.,!?_-]{0,32}"
}

fn element() -> impl Strategy<Value = Element> {
    let leaf = (tag_name(), proptest::option::of(text_content())).prop_map(|(name, text)| {
        let mut e = Element::new(name);
        if let Some(t) = text {
            if !t.is_empty() {
                e.children.push(Node::Text(t));
            }
        }
        e
    });
    leaf.prop_recursive(3, 20, 4, |inner| {
        (
            tag_name(),
            proptest::collection::vec((tag_name(), text_content()), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| {
                let mut e = Element::new(name);
                for (an, av) in attrs {
                    e.set_attr(an, av);
                }
                for c in children {
                    e.children.push(Node::Element(c));
                }
                e
            })
    })
}

proptest! {
    #[test]
    fn escape_unescape_roundtrip(s in "\\PC{0,64}") {
        prop_assert_eq!(unescape(&escape(&s)).unwrap(), s.clone());
        prop_assert_eq!(unescape(&escape_attr(&s)).unwrap(), s);
    }

    #[test]
    fn write_parse_roundtrip(e in element()) {
        let xml = e.to_xml();
        let parsed = Element::parse(&xml).unwrap();
        prop_assert_eq!(parsed, e);
    }

    #[test]
    fn document_form_also_roundtrips(e in element()) {
        let doc = e.to_document();
        let parsed = Element::parse(&doc).unwrap();
        prop_assert_eq!(parsed, e);
    }

    #[test]
    fn pretty_output_is_parseable(e in element()) {
        // Pretty form may normalise whitespace but must stay well-formed.
        let pretty = e.to_pretty_xml();
        prop_assert!(Element::parse(&pretty).is_ok());
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,128}") {
        let _ = Element::parse(&s);
    }

    #[test]
    fn find_all_is_bounded_by_tree_size(e in element(), needle in tag_name()) {
        fn count(e: &Element) -> usize {
            1 + e.child_elements().map(count).sum::<usize>()
        }
        let total = count(&e);
        prop_assert!(e.find_all(&needle).len() < total);
    }
}
