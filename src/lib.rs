//! # Starlink — bridging combined application and middleware heterogeneity
//!
//! A Rust reproduction of the Starlink interoperability framework from
//! *"Bridging the Interoperability Gap: Overcoming Combined Application
//! and Middleware Heterogeneity"* (Bromberg, Grace, Réveillère, Blair —
//! MIDDLEWARE 2011).
//!
//! Starlink makes independently developed systems interoperate by
//! *generating mediators from models* instead of hand-coding bridges:
//!
//! 1. application behaviour is modelled as **API usage protocol
//!    automata** ([`automata`]),
//! 2. two automata are **merged** into a k-colored automaton whose
//!    γ-transitions carry **MTL** data translations ([`mtl`]),
//! 3. message formats are described in **MDL**, a DSL from which generic
//!    parsers/composers are specialised at runtime ([`mdl`]),
//! 4. **binding rules** attach the abstract model to concrete protocols
//!    (GIOP, SOAP, XML-RPC, REST — [`protocols`]), and
//! 5. the **automata engine** executes the result against live
//!    connections ([`core`]).
//!
//! # Quickstart: the Fig. 8 calculator
//!
//! An IIOP client invoking `Add(x, y)` reaches a SOAP service exposing
//! `Plus(x, y)` through a generated mediator:
//!
//! ```
//! use starlink::apps::calculator::{add_plus_mediator, AddClient, PlusService};
//! use starlink::core::MediatorHost;
//! use starlink::net::{Endpoint, MemoryTransport, NetworkEngine};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut net = NetworkEngine::new();
//! net.register(Arc::new(MemoryTransport::new()));
//!
//! let plus = PlusService::deploy(&net, &Endpoint::memory("plus"))?;
//! let mediator = add_plus_mediator(net.clone(), plus.endpoint().clone())?;
//! let host = MediatorHost::deploy(mediator, &Endpoint::memory("bridge"))?;
//!
//! let mut client = AddClient::connect(&net, host.endpoint())?;
//! assert_eq!(client.add(40, 2)?, 42);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for the full Flickr→Picasa case study and DESIGN.md /
//! EXPERIMENTS.md for the paper-reproduction map.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use starlink_apps as apps;
pub use starlink_automata as automata;
pub use starlink_core as core;
pub use starlink_mdl as mdl;
pub use starlink_message as message;
pub use starlink_mtl as mtl;
pub use starlink_net as net;
pub use starlink_protocols as protocols;
pub use starlink_telemetry as telemetry;
pub use starlink_xml as xml;
