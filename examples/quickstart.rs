//! Quickstart: the paper's running example (Fig. 7/8).
//!
//! An IIOP (CORBA GIOP) client invokes `Add(x, y)`; the only available
//! service is a SOAP endpoint exposing `Plus(x, y)`. Starlink merges the
//! two usage protocols, generates the translation logic automatically,
//! and executes the mediator — the client and service are never changed.
//!
//! Run: `cargo run --example quickstart`

use starlink::apps::calculator::{
    add_plus_mediator, add_usage_automaton, merged_add_plus, plus_usage_automaton, AddClient,
    PlusService,
};
use starlink::automata::Action;
use starlink::core::MediatorHost;
use starlink::net::{Endpoint, MemoryTransport, NetworkEngine};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Starlink quickstart: Add (IIOP) meets Plus (SOAP) ===\n");

    // 1. The two applications' API usage protocols (paper §3.1).
    let add = add_usage_automaton();
    let plus = plus_usage_automaton();
    println!("client usage protocol:  {add}");
    println!("service usage protocol: {plus}");

    // 2. The automatic merge (Def. 7): one intertwined pair, MTL
    //    generated from the semantic registry.
    let (merged, report) = merged_add_plus()?;
    println!(
        "merged automaton `{}`: {} states, {} γ-transitions, {:?}",
        merged.name(),
        merged.states().len(),
        merged.gamma_count(),
        report.class,
    );
    for t in merged.transitions() {
        if let Action::Gamma { mtl } = &t.action {
            if !mtl.trim().is_empty() {
                println!("  γ {} → {}:", t.from, t.to);
                for line in mtl.lines().filter(|l| !l.trim().is_empty()) {
                    println!("      {line}");
                }
            }
        }
    }

    // 3. Deploy everything on an in-memory network (swap for
    //    `NetworkEngine::with_defaults()` + tcp:// endpoints for real
    //    sockets — see tests/transports.rs).
    let mut net = NetworkEngine::new();
    net.register(Arc::new(MemoryTransport::new()));
    let plus_service = PlusService::deploy(&net, &Endpoint::memory("plus"))?;
    println!("\nSOAP Plus service at {}", plus_service.endpoint());
    let mediator = add_plus_mediator(net.clone(), plus_service.endpoint().clone())?;
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("bridge"))?;
    println!("mediator deployed at  {}", host.endpoint());

    // 4. The unmodified IIOP client calls through the mediator.
    let mut client = AddClient::connect(&net, host.endpoint())?;
    for (x, y) in [(30, 12), (8, -8), (123456, 654321)] {
        let z = client.add(x, y)?;
        println!("Add({x}, {y}) = {z}    (served by SOAP Plus)");
        assert_eq!(z, x + y);
    }

    println!("\nInteroperability achieved: GIOP request → γ → SOAP Plus → γ → GIOP reply.");
    Ok(())
}
