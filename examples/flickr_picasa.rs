//! The paper's §5.1 case study: an unmodified XML-RPC Flickr client
//! searches and comments on photographs served by a Picasa-compatible
//! REST/GData service, through a generated Starlink mediator — with the
//! redirect proxy of the paper's deployment in front.
//!
//! Run: `cargo run --example flickr_picasa`

use starlink::apps::flickr::{FlickrClient, FlickrFlavor};
use starlink::apps::models::{flickr_picasa_mediator, merged_flickr_picasa};
use starlink::apps::picasa::PicasaService;
use starlink::apps::proxy::RedirectProxy;
use starlink::apps::store::PhotoStore;
use starlink::core::MediatorHost;
use starlink::net::{Endpoint, MemoryTransport, NetworkEngine};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Flickr (XML-RPC) ↔ Picasa (REST/GData) case study ===\n");

    // The interoperability model: Fig. 3's merged automaton, generated
    // by the intertwining analysis.
    let (merged, report) = merged_flickr_picasa()?;
    println!("merge analysis of AFlickr ⊕ APicasa:");
    for r in &report.resolutions {
        println!("  {r:?}");
    }
    println!(
        "→ {:?} merge, {} bi-colored states, {} γ-transitions\n",
        report.class,
        merged.states().iter().filter(|s| s.is_bicolored()).count(),
        merged.gamma_count()
    );

    // Deployment (paper Fig. 6 + §5.1): Picasa service, mediator, and a
    // proxy so the client keeps its original `api.flickr.com` endpoint.
    let mut net = NetworkEngine::new();
    net.register(Arc::new(MemoryTransport::new()));
    let store = PhotoStore::with_fixture();
    let picasa = PicasaService::deploy(&net, &Endpoint::memory("picasaweb.google.com"), store)?;
    println!("Picasa REST service at {}", picasa.endpoint());
    let mediator =
        flickr_picasa_mediator(net.clone(), FlickrFlavor::XmlRpc, picasa.endpoint().clone())?;
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("starlink-mediator"))?;
    println!("Starlink mediator at   {}", host.endpoint());
    let _proxy = RedirectProxy::deploy(&net, &Endpoint::memory("api.flickr.com"), host.endpoint())?;
    println!("redirect proxy at      memory://api.flickr.com\n");

    // The unmodified Flickr client runs its normal Fig. 2 flow.
    let mut client = FlickrClient::connect(
        &net,
        &Endpoint::memory("api.flickr.com"),
        FlickrFlavor::XmlRpc,
    )?;

    println!("flickr.photos.search(text=\"tree\", per_page=3)");
    let ids = client.search("tree", 3)?;
    println!("  → photo ids {ids:?}   (dummy ids minted by the mediator's MTL cache)\n");

    for id in &ids {
        let info = client.get_info(id)?;
        println!(
            "flickr.photos.getInfo({id}) → \"{}\" at {}   (answered from cache — Fig. 10)",
            info.title, info.url
        );
    }

    println!("\nflickr.photos.comments.getList({})", ids[0]);
    for (author, text) in client.get_comments(&ids[0])? {
        println!("  {author}: {text}");
    }

    let cid = client.add_comment(&ids[0], "what a lovely tree!")?;
    println!("\nflickr.photos.comments.addComment → {cid} (written through to Picasa)");
    println!("updated comment list:");
    for (author, text) in client.get_comments(&ids[0])? {
        println!("  {author}: {text}");
    }

    println!("\nCombined application + middleware heterogeneity bridged.");
    Ok(())
}
