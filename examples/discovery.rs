//! Dual-protocol service discovery: an SSDP (UPnP-style) searcher finds
//! devices that are registered only with an SLP directory agent, through
//! a Starlink discovery bridge — the paper's "service discovery" bridging
//! domain alongside RPC.
//!
//! Run: `cargo run --example discovery`

use starlink::net::{Endpoint, MemoryTransport, NetworkEngine};
use starlink::protocols::discovery::{DiscoveryBridge, SlpDirectory, SsdpClient};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== SSDP searcher ↔ SLP directory, bridged ===\n");

    let transport = MemoryTransport::new();
    let mut net = NetworkEngine::new();
    net.register(Arc::new(transport.clone()));

    // Legacy services registered with the SLP directory agent only.
    let directory = SlpDirectory::deploy(
        &net,
        &Endpoint::memory("slp-directory"),
        HashMap::from([
            (
                "service:printer".to_owned(),
                vec![
                    "service:printer://print-room-1:515".to_owned(),
                    "service:printer://print-room-2:515".to_owned(),
                ],
            ),
            (
                "service:scanner".to_owned(),
                vec!["service:scanner://archive:6566".to_owned()],
            ),
        ]),
    )?;
    println!("SLP directory agent at {}", directory.endpoint());

    // The bridge joins the SSDP multicast group and translates service
    // vocabularies between the two discovery worlds.
    let _bridge = DiscoveryBridge::deploy(
        &transport,
        net.clone(),
        directory.endpoint().clone(),
        HashMap::from([
            (
                "urn:schemas-upnp-org:service:Printing:1".to_owned(),
                "service:printer".to_owned(),
            ),
            (
                "urn:schemas-upnp-org:service:Scanning:1".to_owned(),
                "service:scanner".to_owned(),
            ),
        ]),
    );
    println!("discovery bridge listening on the SSDP multicast group\n");

    // A UPnP-era device searches the way it always did.
    let client = SsdpClient::new(transport, net, "control-point")?;
    for st in [
        "urn:schemas-upnp-org:service:Printing:1",
        "urn:schemas-upnp-org:service:Scanning:1",
        "urn:schemas-upnp-org:service:Television:1",
    ] {
        let found = client.search(st, Duration::from_millis(500))?;
        println!("M-SEARCH {st}");
        if found.is_empty() {
            println!("  (no responses)");
        }
        for location in found {
            println!("  LOCATION: {location}");
        }
    }

    println!("\nSSDP searchers see SLP-registered services — discovery bridged.");
    Ok(())
}
