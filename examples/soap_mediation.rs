//! The second use case of §5.1: a **SOAP** Flickr client against the
//! same Picasa REST service — demonstrating hypothesis H1: the single
//! application model binds to a different middleware without changes.
//!
//! Run: `cargo run --example soap_mediation`

use starlink::apps::flickr::{FlickrClient, FlickrFlavor};
use starlink::apps::models::flickr_picasa_mediator;
use starlink::apps::picasa::PicasaService;
use starlink::apps::store::PhotoStore;
use starlink::core::MediatorHost;
use starlink::net::{Endpoint, MemoryTransport, NetworkEngine};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== SOAP Flickr client → Picasa REST (use case 2) ===\n");

    let mut net = NetworkEngine::new();
    net.register(Arc::new(MemoryTransport::new()));
    let store = PhotoStore::with_fixture();
    let picasa = PicasaService::deploy(&net, &Endpoint::memory("picasa"), store)?;

    // Identical application model, different client-facing binding: only
    // `FlickrFlavor::Soap` differs from the XML-RPC example.
    let mediator =
        flickr_picasa_mediator(net.clone(), FlickrFlavor::Soap, picasa.endpoint().clone())?;
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("mediator"))?;
    println!("mediator (SOAP face) at {}\n", host.endpoint());

    let mut client = FlickrClient::connect(&net, host.endpoint(), FlickrFlavor::Soap)?;

    let ids = client.search("tree", 2)?;
    println!("search(\"tree\") → {ids:?}");
    let info = client.get_info(&ids[0])?;
    println!("getInfo({}) → \"{}\" ({})", ids[0], info.title, info.url);
    let comments = client.get_comments(&ids[0])?;
    println!("getList({}) → {} comments", ids[0], comments.len());
    let cid = client.add_comment(&ids[0], "soap says hi")?;
    println!("addComment → {cid}");

    println!("\nSame model, second middleware: hypothesis H1 in action.");
    Ok(())
}
