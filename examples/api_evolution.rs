//! Hypothesis H3: the service API evolves (new paths, renamed
//! parameters) and the unmodified client keeps working after a
//! *model-only* update — no client or engine code changes.
//!
//! Run: `cargo run --example api_evolution`

use starlink::apps::evolution::{flickr_picasa_v2_mediator, PicasaV2Service};
use starlink::apps::flickr::{FlickrClient, FlickrFlavor};
use starlink::apps::models::flickr_picasa_mediator;
use starlink::apps::store::PhotoStore;
use starlink::core::MediatorHost;
use starlink::net::{Endpoint, MemoryTransport, NetworkEngine};
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== API evolution (hypothesis H3) ===\n");
    println!("Picasa ships v2: /data/feed/api/all → /v2/search, q → query, max-results → limit\n");

    let mut net = NetworkEngine::new();
    net.register(Arc::new(MemoryTransport::new()));
    let store = PhotoStore::with_fixture();
    let v2 = PicasaV2Service::deploy(&net, &Endpoint::memory("picasa-v2"), store)?;

    // 1. The old mediator (v1 models) breaks against the v2 API — the
    //    §2.2 failure mode.
    let old = flickr_picasa_mediator(net.clone(), FlickrFlavor::XmlRpc, v2.endpoint().clone())?;
    let old_host = MediatorHost::deploy(old, &Endpoint::memory("old-mediator"))?;
    let mut client = FlickrClient::connect(&net, old_host.endpoint(), FlickrFlavor::XmlRpc)?;
    client.set_timeout(Duration::from_millis(400));
    match client.search("tree", 3) {
        Err(e) => println!("old models vs v2 service: FAILS as expected ({e})"),
        Ok(_) => println!("old models unexpectedly worked?!"),
    }

    // 2. The updated models: three declarative artefacts changed (route
    //    table, interface templates, two MTL lines). Same client binary.
    let new = flickr_picasa_v2_mediator(net.clone(), FlickrFlavor::XmlRpc, v2.endpoint().clone())?;
    let new_host = MediatorHost::deploy(new, &Endpoint::memory("new-mediator"))?;
    let mut client = FlickrClient::connect(&net, new_host.endpoint(), FlickrFlavor::XmlRpc)?;

    let ids = client.search("tree", 3)?;
    println!("\nupdated models vs v2 service:");
    println!("  search(\"tree\") → {ids:?}");
    let info = client.get_info(&ids[0])?;
    println!("  getInfo({}) → \"{}\"", ids[0], info.title);
    let cid = client.add_comment(&ids[0], "evolution handled")?;
    println!("  addComment → {cid}");

    println!("\nModel delta: 3 route entries, renamed template fields, 2 MTL lines.");
    println!("Client delta: zero.");
    Ok(())
}
