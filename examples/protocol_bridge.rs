//! Pure middleware bridging: the *same* Flickr application on both
//! sides, different protocols (XML-RPC client, SOAP service). With no
//! application heterogeneity the merge needs zero custom declarations —
//! registry empty, all MTL generated.
//!
//! Run: `cargo run --example protocol_bridge`

use starlink::apps::flickr::{
    flickr_binding, flickr_codec, flickr_interface, FlickrClient, FlickrFlavor, FlickrService,
};
use starlink::apps::store::PhotoStore;
use starlink::automata::linear_usage_protocol;
use starlink::automata::merge::{intertwine, into_service_loop, MergeOptions};
use starlink::core::{ColorRuntime, Mediator, MediatorHost};
use starlink::message::equiv::SemanticRegistry;
use starlink::net::{Endpoint, MemoryTransport, NetworkEngine};
use std::sync::Arc;

fn usage(color: u8) -> starlink::automata::Automaton {
    let iface = flickr_interface();
    let ops: Vec<_> = iface
        .operations()
        .iter()
        .map(|(req, rep)| (req.clone(), rep.clone()))
        .collect();
    linear_usage_protocol("AFlickr", color, &ops)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Protocol bridge: XML-RPC Flickr client → SOAP Flickr service ===\n");

    let mut net = NetworkEngine::new();
    net.register(Arc::new(MemoryTransport::new()));
    let service = FlickrService::deploy(
        &net,
        &Endpoint::memory("flickr-soap"),
        FlickrFlavor::Soap,
        PhotoStore::with_fixture(),
    )?;

    // Identity merge: no semantic declarations needed at all.
    let (merged, report) = intertwine(
        &usage(1),
        &usage(2),
        &SemanticRegistry::new(),
        &MergeOptions::default(),
    )?;
    println!(
        "automatic merge: {} intertwined operations, class {:?}",
        report.intertwined_count(),
        report.class
    );

    let mediator = Mediator::new(
        into_service_loop(&merged)?,
        1,
        vec![
            ColorRuntime {
                color: 1,
                binding: flickr_binding(FlickrFlavor::XmlRpc),
                codec: flickr_codec(FlickrFlavor::XmlRpc)?,
                endpoint: None,
            },
            ColorRuntime {
                color: 2,
                binding: flickr_binding(FlickrFlavor::Soap),
                codec: flickr_codec(FlickrFlavor::Soap)?,
                endpoint: Some(service.endpoint().clone()),
            },
        ],
        net.clone(),
    )?;
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("bridge"))?;
    println!("bridge deployed at {}\n", host.endpoint());

    let mut client = FlickrClient::connect(&net, host.endpoint(), FlickrFlavor::XmlRpc)?;
    let ids = client.search("tree", 2)?;
    println!("search → {ids:?}  (real service ids pass straight through)");
    let info = client.get_info(&ids[1])?;
    println!("getInfo({}) → \"{}\"", ids[1], info.title);
    client.add_comment(&ids[1], "bridged comment")?;
    println!("comments now: {:?}", client.get_comments(&ids[1])?);

    println!("\nMiddleware-only heterogeneity: bridged with an empty registry.");
    Ok(())
}
