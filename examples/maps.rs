//! A second application domain: an XML-RPC geocoding client (GMaps-style
//! API) served by a REST maps service (BMaps-style API) through a
//! generated mediator — the paper's §3 motivation that heterogeneous
//! maps APIs are the same interoperability problem as photo APIs.
//!
//! Run: `cargo run --example maps`

use starlink::apps::maps::{gmaps_bmaps_mediator, BMapsService, GMapsClient};
use starlink::core::MediatorHost;
use starlink::net::{Endpoint, MemoryTransport, NetworkEngine};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== GMaps (XML-RPC) client ↔ BMaps (REST) service ===\n");

    let mut net = NetworkEngine::new();
    net.register(Arc::new(MemoryTransport::new()));
    let bmaps = BMapsService::deploy(&net, &Endpoint::memory("bmaps"))?;
    let mediator = gmaps_bmaps_mediator(net.clone(), bmaps.endpoint().clone())?;
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("maps-mediator"))?;
    println!("BMaps REST service at {}", bmaps.endpoint());
    println!("mediator at           {}\n", host.endpoint());

    let mut client = GMapsClient::connect(&net, host.endpoint())?;

    for place in ["lisbon", "bordeaux", "lancaster"] {
        for hit in client.geocode(place)? {
            println!(
                "geocode(\"{place}\") → {} at ({:.3}, {:.3})",
                hit.formatted, hit.lat, hit.lng
            );
        }
    }

    let (km, minutes) = client.directions("lisbon", "porto")?;
    println!("\ndirections(lisbon → porto) → {km:.1} km, ≈{minutes:.0} min");
    let (km, minutes) = client.directions("bordeaux", "rennes")?;
    println!("directions(bordeaux → rennes) → {km:.1} km, ≈{minutes:.0} min");

    println!("\nSame framework, different domain: only models changed.");
    Ok(())
}
