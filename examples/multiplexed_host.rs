//! The multiplexed mediator host over real TCP sockets: many concurrent
//! GIOP `Add` clients served through a SOAP `Plus` service by a host
//! running a bounded pool of worker threads (see `docs/engine.md`).
//!
//! Run: `cargo run --example multiplexed_host`
//!
//! Operations-plane knobs (all optional, plain runs are unaffected):
//!
//! * `STARLINK_DIAG_ADDR=tcp://127.0.0.1:7070` — enable the ops plane
//!   and serve the unified diagnostics endpoint there (poll it with
//!   `starlink health tcp://127.0.0.1:7070`),
//! * `STARLINK_HOLD_SECS=<n>` — keep the host (and the diagnostics
//!   endpoint) up for `n` seconds after the workload completes,
//! * `STARLINK_STALL_DEMO=1` — hold one silent client connection so the
//!   stall watchdog flags it and health degrades while holding.

use starlink::apps::calculator::{add_plus_mediator, run_add_workload, PlusService};
use starlink::core::{MediatorHost, OpsConfig};
use starlink::net::{Endpoint, NetworkEngine, TcpTransport};
use starlink::telemetry::{chrome_events, render_chrome_json, render_timeline};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 32;
const REQUESTS: usize = 5;
const WORKERS: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Multiplexed mediator host (GIOP ⇄ SOAP over TCP) ===\n");

    let mut net = NetworkEngine::new();
    net.register(Arc::new(TcpTransport::new()));

    let plus = PlusService::deploy(&net, &Endpoint::tcp("127.0.0.1", 0))?;
    println!("SOAP Plus service at {}", plus.endpoint());

    let diag_addr = std::env::var("STARLINK_DIAG_ADDR").ok();
    let stall_demo = std::env::var("STARLINK_STALL_DEMO").is_ok();
    let hold_secs: u64 = std::env::var("STARLINK_HOLD_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);

    let mut mediator = add_plus_mediator(net.clone(), plus.endpoint().clone())?;
    let (traces, flight) = mediator.enable_tracing();
    if diag_addr.is_some() || stall_demo {
        mediator.enable_ops(OpsConfig::watching(Duration::from_secs(1)));
    }
    if stall_demo {
        // Keep the silent session parked (and the stall gauge raised)
        // for the whole hold instead of timing it out mid-demo.
        mediator.timeout = Duration::from_secs(600);
    }
    let host = MediatorHost::deploy_multiplexed(mediator, &Endpoint::tcp("127.0.0.1", 0), WORKERS)?;
    println!(
        "mediator (GIOP face) at {} — {WORKERS} worker threads\n",
        host.endpoint()
    );
    if let Some(addr) = &diag_addr {
        let diag = host.expose_diagnostics(&net, &addr.parse()?)?;
        println!("diagnostics endpoint at {diag}");
    }
    let _silent = if stall_demo {
        println!("stall demo: holding one silent client connection");
        Some(net.connect(host.endpoint())?)
    } else {
        None
    };

    let started = Instant::now();
    let completed = run_add_workload(&net, host.endpoint(), CLIENTS, REQUESTS);
    let elapsed = started.elapsed();

    println!("{CLIENTS} clients × {REQUESTS} calls: {completed} correct replies in {elapsed:?}");
    println!(
        "host counted {} completed sessions",
        host.completed_sessions()
    );
    assert_eq!(completed, CLIENTS * REQUESTS);

    if hold_secs > 0 {
        println!("holding host for {hold_secs}s (diagnostics pollable)…");
        std::thread::sleep(Duration::from_secs(hold_secs));
    }
    host.shutdown();
    println!("\nhost shut down cleanly; all threads joined.");

    println!("\n--- telemetry snapshot ---");
    print!("{}", host.telemetry_snapshot().render_text());

    // Per-session causal trace of one completed session: accept →
    // receive/parse → γ-translate → send on each color, as a span tree.
    // The very latest trace is the empty traversal parked when the
    // client hung up, so show the latest one that did translation work.
    let traced = traces
        .traces()
        .into_iter()
        .rev()
        .find(|t| t.span_names().contains(&"gamma"));
    if let Some(trace) = traced {
        println!("\n--- latest session trace ---");
        print!("{}", render_timeline(&trace));
        let captures = flight.captures(trace.session);
        println!("--- flight recorder ({} captures) ---", captures.len());
        for c in &captures {
            println!("  {} {}", c.stage, c.message);
        }
    }

    // STARLINK_TRACE_OUT=<path> dumps every completed session trace as
    // Chrome trace_event JSON (load in chrome://tracing or Perfetto).
    if let Ok(path) = std::env::var("STARLINK_TRACE_OUT") {
        let events: Vec<_> = traces.traces().iter().flat_map(chrome_events).collect();
        std::fs::write(&path, render_chrome_json(&events))?;
        println!("\nwrote Chrome trace ({} events) to {path}", events.len());
    }
    Ok(())
}
