//! Robustness: deployed mediators and services must survive malformed
//! wire input — drop the offending session, keep serving others.

use starlink::apps::calculator::{add_plus_mediator, AddClient, PlusService};
use starlink::apps::flickr::{FlickrClient, FlickrFlavor};
use starlink::apps::models::flickr_picasa_mediator;
use starlink::apps::picasa::PicasaService;
use starlink::apps::store::PhotoStore;
use starlink::core::MediatorHost;
use starlink::net::{Endpoint, MemoryTransport, NetworkEngine};
use std::sync::Arc;
use std::time::Duration;

fn network() -> NetworkEngine {
    let mut net = NetworkEngine::new();
    net.register(Arc::new(MemoryTransport::new()));
    net
}

#[test]
fn mediator_survives_garbage_bytes() {
    let net = network();
    let plus = PlusService::deploy(&net, &Endpoint::memory("plus")).unwrap();
    let mediator = add_plus_mediator(net.clone(), plus.endpoint().clone()).unwrap();
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("bridge")).unwrap();

    // An attacker / confused peer sends junk frames.
    for payload in [
        &b""[..],
        &b"\x00"[..],
        &b"GIOPBUTNOTREALLY"[..],
        &[0xFFu8; 512][..],
        "<xml-but-not-giop/>".as_bytes(),
    ] {
        let mut raw = net.connect(host.endpoint()).unwrap();
        let _ = raw.send(payload);
        // The mediator must not answer garbage with a protocol reply.
        assert!(raw.receive_timeout(Duration::from_millis(150)).is_err());
    }

    // A well-behaved client still gets served afterwards.
    let mut client = AddClient::connect(&net, host.endpoint()).unwrap();
    assert_eq!(client.add(40, 2).unwrap(), 42);
}

#[test]
fn picasa_service_survives_garbage_http() {
    let net = network();
    let picasa = PicasaService::deploy(
        &net,
        &Endpoint::memory("picasa"),
        PhotoStore::with_fixture(),
    )
    .unwrap();
    for payload in [
        &b"NOT HTTP AT ALL"[..],
        &b"GET\r\n\r\n"[..],
        &b"POST /data/feed/api/comments HTTP/1.1\r\n\r\n<entry>unclosed"[..],
    ] {
        let mut raw = net.connect(picasa.endpoint()).unwrap();
        let _ = raw.send(payload);
        let _ = raw.receive_timeout(Duration::from_millis(100));
    }
    // Still serving.
    let mut client =
        starlink::apps::picasa::PicasaClient::connect(&net, picasa.endpoint()).unwrap();
    assert_eq!(client.search("tree", 2).unwrap().len(), 2);
}

#[test]
fn case_study_mediator_survives_wrong_protocol_client() {
    // A SOAP client speaks to the XML-RPC-facing mediator: the wire
    // messages parse as HTTP but not as XML-RPC calls; the session is
    // dropped and fresh XML-RPC clients are unaffected.
    let net = network();
    let picasa = PicasaService::deploy(
        &net,
        &Endpoint::memory("picasa"),
        PhotoStore::with_fixture(),
    )
    .unwrap();
    let mediator =
        flickr_picasa_mediator(net.clone(), FlickrFlavor::XmlRpc, picasa.endpoint().clone())
            .unwrap();
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("mediator")).unwrap();

    let mut wrong = FlickrClient::connect(&net, host.endpoint(), FlickrFlavor::Soap).unwrap();
    wrong.set_timeout(Duration::from_millis(300));
    assert!(wrong.search("tree", 3).is_err());

    let mut right = FlickrClient::connect(&net, host.endpoint(), FlickrFlavor::XmlRpc).unwrap();
    assert_eq!(right.search("tree", 3).unwrap().len(), 3);
}

#[test]
fn half_session_disconnects_do_not_wedge_the_mediator() {
    let net = network();
    let picasa = PicasaService::deploy(
        &net,
        &Endpoint::memory("picasa"),
        PhotoStore::with_fixture(),
    )
    .unwrap();
    let mediator =
        flickr_picasa_mediator(net.clone(), FlickrFlavor::XmlRpc, picasa.endpoint().clone())
            .unwrap();
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("mediator")).unwrap();

    // Ten clients search then vanish mid-protocol.
    for _ in 0..10 {
        let mut c = FlickrClient::connect(&net, host.endpoint(), FlickrFlavor::XmlRpc).unwrap();
        let _ = c.search("tree", 1).unwrap();
        drop(c);
    }
    // The mediator still serves a full flow.
    let mut c = FlickrClient::connect(&net, host.endpoint(), FlickrFlavor::XmlRpc).unwrap();
    let ids = c.search("oak", 5).unwrap();
    assert_eq!(ids.len(), 1);
    assert_eq!(c.get_info(&ids[0]).unwrap().title, "Old Oak");
}
