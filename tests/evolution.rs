//! Hypothesis H3, end to end: when the service API evolves, only models
//! change — the unmodified Flickr client keeps working (DESIGN.md row
//! H3).

use starlink::apps::evolution::{flickr_picasa_v2_mediator, PicasaV2Service};
use starlink::apps::flickr::{FlickrClient, FlickrFlavor};
use starlink::apps::store::PhotoStore;
use starlink::core::MediatorHost;
use starlink::net::{Endpoint, MemoryTransport, NetworkEngine};
use std::sync::Arc;

fn network() -> NetworkEngine {
    let mut net = NetworkEngine::new();
    net.register(Arc::new(MemoryTransport::new()));
    net
}

#[test]
fn unmodified_client_survives_api_evolution() {
    // The service has moved to v2: new paths, renamed parameters.
    let net = network();
    let store = PhotoStore::with_fixture();
    let picasa_v2 =
        PicasaV2Service::deploy(&net, &Endpoint::memory("picasa-v2"), store.clone()).unwrap();

    // Only the models changed; this is the v1 client binary, untouched.
    let mediator = flickr_picasa_v2_mediator(
        net.clone(),
        FlickrFlavor::XmlRpc,
        picasa_v2.endpoint().clone(),
    )
    .unwrap();
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("mediator")).unwrap();
    let mut client = FlickrClient::connect(&net, host.endpoint(), FlickrFlavor::XmlRpc).unwrap();

    let ids = client.search("tree", 3).unwrap();
    assert_eq!(ids.len(), 3);
    let info = client.get_info(&ids[0]).unwrap();
    assert_eq!(info.title, "Tall Tree");
    client.add_comment(&ids[0], "still works after v2").unwrap();
    assert_eq!(
        store.comments("gphoto-1").last().unwrap().text,
        "still works after v2"
    );
}

#[test]
fn old_mediator_fails_against_v2_service() {
    // The motivating failure: v1 routes no longer exist server-side, so
    // the *old* mediator (old models) breaks against the new API — this
    // is exactly the situation §2.2 describes.
    let net = network();
    let picasa_v2 = PicasaV2Service::deploy(
        &net,
        &Endpoint::memory("picasa-v2"),
        PhotoStore::with_fixture(),
    )
    .unwrap();
    let mediator = starlink::apps::models::flickr_picasa_mediator(
        net.clone(),
        FlickrFlavor::XmlRpc,
        picasa_v2.endpoint().clone(),
    )
    .unwrap();
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("old-mediator")).unwrap();
    let mut client = FlickrClient::connect(&net, host.endpoint(), FlickrFlavor::XmlRpc).unwrap();
    client.set_timeout(std::time::Duration::from_millis(400));
    assert!(client.search("tree", 3).is_err());
}

#[test]
fn soap_client_also_survives_evolution() {
    let net = network();
    let picasa_v2 = PicasaV2Service::deploy(
        &net,
        &Endpoint::memory("picasa-v2"),
        PhotoStore::with_fixture(),
    )
    .unwrap();
    let mediator = flickr_picasa_v2_mediator(
        net.clone(),
        FlickrFlavor::Soap,
        picasa_v2.endpoint().clone(),
    )
    .unwrap();
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("mediator")).unwrap();
    let mut client = FlickrClient::connect(&net, host.endpoint(), FlickrFlavor::Soap).unwrap();
    let ids = client.search("beach", 5).unwrap();
    assert_eq!(ids.len(), 1);
    assert_eq!(client.get_info(&ids[0]).unwrap().title, "Sunny Beach");
}
