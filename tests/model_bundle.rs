//! Models are data: the case-study model bundle survives a save/load
//! round trip through the registry, and a mediator built from the
//! *loaded* models still works — deploying Starlink is file distribution
//! (§5.2's evolution/deployment claim).

use starlink::apps::flickr::{flickr_binding, FlickrClient, FlickrFlavor};
use starlink::apps::models::merged_flickr_picasa;
use starlink::apps::picasa::PicasaService;
use starlink::apps::store::PhotoStore;
use starlink::automata::merge::into_service_loop;
use starlink::core::{ColorRuntime, Mediator, MediatorHost, ModelRegistry};
use starlink::net::{Endpoint, MemoryTransport, NetworkEngine};
use starlink::protocols::gdata::{rest_binding, GDATA_MDL};
use starlink::protocols::giop::GIOP_MDL;
use starlink::protocols::http::HTTP_MDL;
use starlink::protocols::soap::SOAP_MDL;
use starlink::protocols::xmlrpc::XMLRPC_MDL;
use std::sync::Arc;

fn bundle_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("starlink-models-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn save_load_roundtrip_counts() {
    let dir = bundle_dir("counts");
    let (merged, _) = merged_flickr_picasa().unwrap();
    ModelRegistry::save_models(
        &dir,
        &[
            ("GIOP.mdl", GIOP_MDL),
            ("HTTP.mdl", HTTP_MDL),
            ("SOAP.mdl", SOAP_MDL),
            ("XMLRPC.mdl", XMLRPC_MDL),
            ("GDATA.mdl", GDATA_MDL),
        ],
        &[&merged],
    )
    .unwrap();

    let mut registry = ModelRegistry::new();
    let loaded = registry.load_dir(&dir).unwrap();
    assert_eq!(loaded, 6);
    assert_eq!(
        registry.codec_names(),
        vec![
            "GDATA.mdl",
            "GIOP.mdl",
            "HTTP.mdl",
            "SOAP.mdl",
            "XMLRPC.mdl"
        ]
    );
    assert_eq!(registry.automaton_names(), vec!["AFlickr+APicasa"]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mediator_from_loaded_models_works() {
    let dir = bundle_dir("deploy");
    let (merged, _) = merged_flickr_picasa().unwrap();
    ModelRegistry::save_models(&dir, &[], &[&merged]).unwrap();

    // A "fresh node" loads the bundle and deploys from it.
    let mut registry = ModelRegistry::new();
    registry.load_dir(&dir).unwrap();
    let loaded = registry.automaton("AFlickr+APicasa").unwrap();

    let mut net = NetworkEngine::new();
    net.register(Arc::new(MemoryTransport::new()));
    let store = PhotoStore::with_fixture();
    let picasa = PicasaService::deploy(&net, &Endpoint::memory("picasa"), store).unwrap();

    let mediator = Mediator::new(
        into_service_loop(&loaded).unwrap(),
        1,
        vec![
            ColorRuntime {
                color: 1,
                binding: flickr_binding(FlickrFlavor::XmlRpc),
                codec: starlink::apps::flickr::flickr_codec(FlickrFlavor::XmlRpc).unwrap(),
                endpoint: None,
            },
            ColorRuntime {
                color: 2,
                binding: rest_binding(),
                codec: Arc::new(
                    starlink::protocols::gdata::rest_codec("picasaweb.google.com").unwrap(),
                ),
                endpoint: Some(picasa.endpoint().clone()),
            },
        ],
        net.clone(),
    )
    .unwrap();
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("mediator")).unwrap();
    let mut client = FlickrClient::connect(&net, host.endpoint(), FlickrFlavor::XmlRpc).unwrap();
    let ids = client.search("tree", 2).unwrap();
    assert_eq!(ids.len(), 2);
    assert_eq!(client.get_info(&ids[0]).unwrap().title, "Tall Tree");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn load_dir_rejects_broken_models() {
    let dir = bundle_dir("broken");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("bad.mdl"), "<NotAMessage").unwrap();
    let mut registry = ModelRegistry::new();
    assert!(registry.load_dir(&dir).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn load_dir_missing_directory_errors() {
    let mut registry = ModelRegistry::new();
    assert!(registry
        .load_dir(std::path::Path::new("/definitely/not/here"))
        .is_err());
}
