//! Pure middleware bridging (the Starlink ICDCS'11 scenario the paper
//! builds on): the *application* is identical on both sides — only the
//! middleware differs — so the merge needs no custom MTL at all: the
//! default field mappings generated from the semantic registry suffice.

use starlink::apps::flickr::{
    flickr_binding, flickr_codec, flickr_interface, FlickrClient, FlickrFlavor, FlickrService,
};
use starlink::apps::store::PhotoStore;
use starlink::automata::linear_usage_protocol;
use starlink::automata::merge::{intertwine, into_service_loop, MergeOptions};
use starlink::core::{ColorRuntime, Mediator, MediatorHost};
use starlink::message::equiv::SemanticRegistry;
use starlink::net::{Endpoint, MemoryTransport, NetworkEngine};
use std::sync::Arc;

fn usage(color: u8) -> starlink::automata::Automaton {
    let iface = flickr_interface();
    let ops: Vec<_> = iface
        .operations()
        .iter()
        .map(|(req, rep)| (req.clone(), rep.clone()))
        .collect();
    linear_usage_protocol("AFlickr", color, &ops)
}

#[test]
fn xmlrpc_client_bridged_to_soap_flickr_service() {
    let mut net = NetworkEngine::new();
    net.register(Arc::new(MemoryTransport::new()));

    // A SOAP Flickr service with real data.
    let service = FlickrService::deploy(
        &net,
        &Endpoint::memory("flickr-soap"),
        FlickrFlavor::Soap,
        PhotoStore::with_fixture(),
    )
    .unwrap();

    // Identity application merge: no registry declarations, no MTL
    // overrides — everything is derived automatically because operation
    // names and field labels coincide.
    let (merged, report) = intertwine(
        &usage(1),
        &usage(2),
        &SemanticRegistry::new(),
        &MergeOptions::default(),
    )
    .unwrap();
    assert_eq!(report.intertwined_count(), 4, "all four ops intertwine");

    let mediator = Mediator::new(
        into_service_loop(&merged).unwrap(),
        1,
        vec![
            ColorRuntime {
                color: 1,
                binding: flickr_binding(FlickrFlavor::XmlRpc),
                codec: flickr_codec(FlickrFlavor::XmlRpc).unwrap(),
                endpoint: None,
            },
            ColorRuntime {
                color: 2,
                binding: flickr_binding(FlickrFlavor::Soap),
                codec: flickr_codec(FlickrFlavor::Soap).unwrap(),
                endpoint: Some(service.endpoint().clone()),
            },
        ],
        net.clone(),
    )
    .unwrap();
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("bridge")).unwrap();

    // The unmodified XML-RPC client drives the full flow through the
    // bridge: here getInfo really reaches the service (no cache trick —
    // both APIs have the operation).
    let mut client = FlickrClient::connect(&net, host.endpoint(), FlickrFlavor::XmlRpc).unwrap();
    let ids = client.search("tree", 2).unwrap();
    assert_eq!(
        ids,
        vec!["gphoto-1", "gphoto-2"],
        "real service ids pass through"
    );
    let info = client.get_info(&ids[1]).unwrap();
    assert_eq!(info.title, "Old Oak");
    let comments = client.get_comments(&ids[1]).unwrap();
    assert_eq!(comments.len(), 1);
    client.add_comment(&ids[1], "bridged!").unwrap();
    assert_eq!(client.get_comments(&ids[1]).unwrap().len(), 2);
}

#[test]
fn soap_client_bridged_to_xmlrpc_flickr_service() {
    // The reverse direction: SOAP client, XML-RPC service.
    let mut net = NetworkEngine::new();
    net.register(Arc::new(MemoryTransport::new()));
    let service = FlickrService::deploy(
        &net,
        &Endpoint::memory("flickr-xmlrpc"),
        FlickrFlavor::XmlRpc,
        PhotoStore::with_fixture(),
    )
    .unwrap();
    let (merged, _) = intertwine(
        &usage(1),
        &usage(2),
        &SemanticRegistry::new(),
        &MergeOptions::default(),
    )
    .unwrap();
    let mediator = Mediator::new(
        into_service_loop(&merged).unwrap(),
        1,
        vec![
            ColorRuntime {
                color: 1,
                binding: flickr_binding(FlickrFlavor::Soap),
                codec: flickr_codec(FlickrFlavor::Soap).unwrap(),
                endpoint: None,
            },
            ColorRuntime {
                color: 2,
                binding: flickr_binding(FlickrFlavor::XmlRpc),
                codec: flickr_codec(FlickrFlavor::XmlRpc).unwrap(),
                endpoint: Some(service.endpoint().clone()),
            },
        ],
        net.clone(),
    )
    .unwrap();
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("bridge")).unwrap();
    let mut client = FlickrClient::connect(&net, host.endpoint(), FlickrFlavor::Soap).unwrap();
    let ids = client.search("beach", 5).unwrap();
    assert_eq!(ids.len(), 1);
    assert_eq!(client.get_info(&ids[0]).unwrap().title, "Sunny Beach");
}
