//! The paper's §5.1 case study, end to end: unmodified Flickr clients
//! (XML-RPC and SOAP) search and comment on photographs served by a
//! Picasa-compatible REST service, through generated Starlink mediators.
//!
//! Reproduces experiment rows F1/F9/F10 and H2 of DESIGN.md §4.

use starlink::apps::flickr::{FlickrClient, FlickrFlavor};
use starlink::apps::models::flickr_picasa_mediator;
use starlink::apps::picasa::{PicasaClient, PicasaService};
use starlink::apps::proxy::RedirectProxy;
use starlink::apps::store::PhotoStore;
use starlink::core::MediatorHost;
use starlink::net::{Endpoint, MemoryTransport, NetworkEngine};
use std::sync::Arc;

fn network() -> NetworkEngine {
    let mut net = NetworkEngine::new();
    net.register(Arc::new(MemoryTransport::new()));
    net
}

/// Deploys store + Picasa service + mediator; returns the network, the
/// mediator endpoint, and the store (for cross-checking side effects).
fn deploy(flavor: FlickrFlavor) -> (NetworkEngine, Endpoint, PhotoStore, MediatorHost) {
    let net = network();
    let store = PhotoStore::with_fixture();
    let picasa = PicasaService::deploy(&net, &Endpoint::memory("picasa"), store.clone()).unwrap();
    let mediator = flickr_picasa_mediator(net.clone(), flavor, picasa.endpoint().clone()).unwrap();
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("mediator")).unwrap();
    let endpoint = host.endpoint().clone();
    // Keep the service alive for the test's duration.
    std::mem::forget(picasa);
    (net, endpoint, store, host)
}

fn full_case_study(flavor: FlickrFlavor) {
    let (net, mediator_ep, store, _host) = deploy(flavor);
    let mut client = FlickrClient::connect(&net, &mediator_ep, flavor).unwrap();

    // 1. Keyword search on public photos (Fig. 9). The mediator answers
    //    with dummy Flickr photo ids minted by the MTL cache.
    let ids = client.search("tree", 3).unwrap();
    assert_eq!(ids.len(), 3, "three tree photos in the fixture");
    assert_eq!(ids[0], "1000", "dummy ids are deterministic");
    assert_eq!(ids[1], "1001");

    // 2. getInfo — no Picasa operation exists; the mediator answers from
    //    the cache (Fig. 10) with the data of the Picasa search entry.
    let info = client.get_info(&ids[0]).unwrap();
    assert_eq!(info.id, "1000");
    assert_eq!(info.title, "Tall Tree");
    assert_eq!(info.url, "http://photos.example.org/1.jpg");

    let info2 = client.get_info(&ids[1]).unwrap();
    assert_eq!(info2.title, "Old Oak");

    // 3. Listing comments maps the dummy id back to the Picasa entry.
    let comments = client.get_comments(&ids[0]).unwrap();
    assert_eq!(
        comments,
        vec![
            ("bob".to_owned(), "great shot".to_owned()),
            ("carol".to_owned(), "love the light".to_owned()),
        ]
    );

    // 4. Adding a comment writes through to the Picasa store.
    let before = store.comments("gphoto-1").len();
    let comment_id = client.add_comment(&ids[0], "lovely tree!").unwrap();
    assert!(comment_id.starts_with("comment-"));
    let after = store.comments("gphoto-1");
    assert_eq!(after.len(), before + 1);
    assert_eq!(after.last().unwrap().text, "lovely tree!");
}

#[test]
fn xmlrpc_flickr_client_interoperates_with_picasa() {
    full_case_study(FlickrFlavor::XmlRpc);
}

#[test]
fn soap_flickr_client_interoperates_with_picasa() {
    full_case_study(FlickrFlavor::Soap);
}

#[test]
fn deployment_with_redirect_proxy() {
    // §5.1: "we deployed a simple proxy to redirect the Flickr requests
    // (originally directed to the Flickr servers) to the local Starlink
    // mediator" — the client's configured endpoint never changes.
    let (net, mediator_ep, _store, _host) = deploy(FlickrFlavor::XmlRpc);
    let proxy =
        RedirectProxy::deploy(&net, &Endpoint::memory("api.flickr.com"), &mediator_ep).unwrap();
    let mut client = FlickrClient::connect(
        &net,
        &Endpoint::memory("api.flickr.com"),
        FlickrFlavor::XmlRpc,
    )
    .unwrap();
    let ids = client.search("beach", 5).unwrap();
    assert_eq!(ids.len(), 1);
    let info = client.get_info(&ids[0]).unwrap();
    assert_eq!(info.title, "Sunny Beach");
    assert!(proxy.relayed_exchanges() >= 2);
}

#[test]
fn mediated_and_native_views_agree() {
    // The mediated Flickr view and the native Picasa view must observe
    // the same service state.
    let (net, mediator_ep, _store, _host) = deploy(FlickrFlavor::XmlRpc);
    let mut flickr = FlickrClient::connect(&net, &mediator_ep, FlickrFlavor::XmlRpc).unwrap();
    let mut picasa = PicasaClient::connect(&net, &Endpoint::memory("picasa")).unwrap();

    let ids = flickr.search("tree", 3).unwrap();
    flickr.add_comment(&ids[2], "via flickr").unwrap();

    // Natively, gphoto-3 (third tree photo) now carries the comment.
    let native = picasa.get_comments("gphoto-3").unwrap();
    assert_eq!(
        native,
        vec![("starlink-user".to_owned(), "via flickr".to_owned())]
    );
}

#[test]
fn search_with_no_results_yields_empty_reply() {
    let (net, mediator_ep, _store, _host) = deploy(FlickrFlavor::XmlRpc);
    let mut client = FlickrClient::connect(&net, &mediator_ep, FlickrFlavor::XmlRpc).unwrap();
    let ids = client.search("zebra", 10).unwrap();
    assert!(ids.is_empty());
}

#[test]
fn sequential_sessions_share_the_translation_cache() {
    // getInfo in a later traversal must still resolve ids minted in an
    // earlier one (the cache lives with the client connection).
    let (net, mediator_ep, _store, _host) = deploy(FlickrFlavor::XmlRpc);
    let mut client = FlickrClient::connect(&net, &mediator_ep, FlickrFlavor::XmlRpc).unwrap();
    let first = client.search("tree", 2).unwrap();
    let info = client.get_info(&first[1]).unwrap();
    assert_eq!(info.title, "Old Oak");
}
