//! Engine features beyond the happy path: `sethost` endpoint rebinding
//! (Fig. 9's `SetHost(https://picasaweb.google.com)`), mediator-initiated
//! service operations (one-to-many mismatches), and degraded weak-merge
//! behaviour.

use starlink::automata::linear_usage_protocol;
use starlink::automata::merge::{intertwine, template, MergeBuilder, MergeClass, MergeOptions};
use starlink::core::{
    ActionRule, ColorRuntime, Mediator, MediatorHost, ParamRule, ProtocolBinding, ReplyAction,
    RpcClient, RpcServer, ServiceHandler, ServiceInterface,
};
use starlink::mdl::MdlCodec;
use starlink::message::equiv::SemanticRegistry;
use starlink::message::{AbstractMessage, Field, Value};
use starlink::net::{Endpoint, MemoryTransport, NetworkEngine};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const WIRE_MDL: &str = "\
<Message:Req>\n\
<Rule:Kind=0>\n\
<Kind:8><OpLength:32><Op:OpLength>\n\
<align:64><Params:eof:valueseq>\n\
<End:Message>\n\
<Message:Rep>\n\
<Rule:Kind=1>\n\
<Kind:8><OpLength:32><Op:OpLength>\n\
<align:64><Params:eof:valueseq>\n\
<End:Message>";

fn binding() -> ProtocolBinding {
    ProtocolBinding::new("WIRE", "WIRE.mdl", "Req", "Rep")
        .with_request_action(ActionRule::Field("Op".parse().unwrap()))
        .with_reply_action(ReplyAction::Field("Op".parse().unwrap()))
        .with_params(
            ParamRule::PositionalArray("Params".parse().unwrap()),
            ParamRule::PositionalArray("Params".parse().unwrap()),
        )
}

fn network() -> NetworkEngine {
    let mut net = NetworkEngine::new();
    net.register(Arc::new(MemoryTransport::new()));
    net
}

fn echo_interface(op: &str, arg: &str, res: &str) -> ServiceInterface {
    let mut req = AbstractMessage::new(op);
    req.set_field(arg, Value::Null);
    let mut rep = AbstractMessage::new(format!("{op}.reply"));
    rep.set_field(res, Value::Null);
    ServiceInterface::new().with_operation(req, rep)
}

#[test]
fn sethost_redirects_the_service_connection() {
    // The mediator's color-2 runtime has NO static endpoint; the MTL's
    // `sethost` names the real service — exercising Fig. 9's dynamic
    // endpoint rebinding.
    let net = network();
    let codec = Arc::new(MdlCodec::from_text(WIRE_MDL).unwrap());

    let handler: Arc<ServiceHandler> = Arc::new(|req| {
        let mut reply = AbstractMessage::new("svc.op.reply");
        reply.set_field("r", req.get("a").cloned().unwrap_or(Value::Null));
        Ok(reply)
    });
    let _service = RpcServer::serve(
        &net,
        &Endpoint::memory("the-real-service"),
        codec.clone(),
        binding(),
        echo_interface("svc.op", "a", "r"),
        handler,
    )
    .unwrap();

    let mut b = MergeBuilder::new("SetHostDemo", 1, 2);
    b.intertwined(
        template("client.op", &["a"]),
        template("client.op.reply", &["r"]),
        template("svc.op", &["a"]),
        template("svc.op.reply", &["r"]),
        "sethost(\"memory://the-real-service\")\nm2.a = m1.a",
        "m5.r = m4.r",
    )
    .unwrap();
    let (merged, _) = b.finish().unwrap();

    let mediator = Mediator::new(
        merged,
        1,
        vec![
            ColorRuntime {
                color: 1,
                binding: binding(),
                codec: codec.clone(),
                endpoint: None,
            },
            ColorRuntime {
                color: 2,
                binding: binding(),
                codec: codec.clone(),
                endpoint: None, // only sethost knows where to go
            },
        ],
        net.clone(),
    )
    .unwrap();
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("mediator")).unwrap();
    let mut client = RpcClient::connect(
        &net,
        host.endpoint(),
        codec,
        binding(),
        echo_interface("client.op", "a", "r"),
    )
    .unwrap();
    let mut req = AbstractMessage::new("client.op");
    req.set_field("a", Value::Int(99));
    let reply = client.call(&req).unwrap();
    assert_eq!(reply.get("r").unwrap().as_int(), Some(99));
}

#[test]
fn trailing_service_op_is_auto_invoked() {
    // Service protocol: op then a mandatory `logout` the client never
    // performs (one-to-many mismatch). The mediator must auto-invoke it.
    let net = network();
    let codec = Arc::new(MdlCodec::from_text(WIRE_MDL).unwrap());
    let logout_count = Arc::new(AtomicUsize::new(0));

    let counted = logout_count.clone();
    let handler: Arc<ServiceHandler> = Arc::new(move |req| match req.name() {
        "svc.op" => {
            let mut reply = AbstractMessage::new("svc.op.reply");
            reply.set_field("r", req.get("a").cloned().unwrap_or(Value::Null));
            Ok(reply)
        }
        "svc.logout" => {
            counted.fetch_add(1, Ordering::SeqCst);
            let mut reply = AbstractMessage::new("svc.logout.reply");
            reply.set_field("done", Value::Bool(true));
            Ok(reply)
        }
        other => Err(format!("unexpected {other}")),
    });
    let mut svc_iface = ServiceInterface::new();
    {
        let mut req = AbstractMessage::new("svc.op");
        req.set_field("a", Value::Null);
        let mut rep = AbstractMessage::new("svc.op.reply");
        rep.set_field("r", Value::Null);
        svc_iface.add_operation(req, rep);
        let mut req = AbstractMessage::new("svc.logout");
        req.set_field("a", Value::Null);
        let mut rep = AbstractMessage::new("svc.logout.reply");
        rep.set_field("done", Value::Null);
        svc_iface.add_operation(req, rep);
    }
    let service = RpcServer::serve(
        &net,
        &Endpoint::memory("svc"),
        codec.clone(),
        binding(),
        svc_iface,
        handler,
    )
    .unwrap();

    // Automatic merge: svc.logout is trailing and derivable from history
    // (its `a` parameter matches the client's).
    let mut reg = SemanticRegistry::new();
    reg.declare_message_concept("op", ["client.op", "svc.op"]);
    let client_usage = linear_usage_protocol(
        "C",
        1,
        &[(
            template("client.op", &["a"]),
            template("client.op.reply", &["r"]),
        )],
    );
    let service_usage = linear_usage_protocol(
        "S",
        2,
        &[
            (template("svc.op", &["a"]), template("svc.op.reply", &["r"])),
            (
                template("svc.logout", &["a"]),
                template("svc.logout.reply", &["done"]),
            ),
        ],
    );
    let (merged, report) = intertwine(
        &client_usage,
        &service_usage,
        &reg,
        &MergeOptions::default(),
    )
    .unwrap();
    assert_eq!(report.resolutions.len(), 2);

    let mediator = Mediator::new(
        merged,
        1,
        vec![
            ColorRuntime {
                color: 1,
                binding: binding(),
                codec: codec.clone(),
                endpoint: None,
            },
            ColorRuntime {
                color: 2,
                binding: binding(),
                codec: codec.clone(),
                endpoint: Some(service.endpoint().clone()),
            },
        ],
        net.clone(),
    )
    .unwrap();
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("mediator")).unwrap();
    let mut client = RpcClient::connect(
        &net,
        host.endpoint(),
        codec,
        binding(),
        echo_interface("client.op", "a", "r"),
    )
    .unwrap();
    let mut req = AbstractMessage::new("client.op");
    req.set_field("a", Value::Int(5));
    let reply = client.call(&req).unwrap();
    assert_eq!(reply.get("r").unwrap().as_int(), Some(5));
    // The logout the client never asked for happened behind the scenes.
    for _ in 0..50 {
        if logout_count.load(Ordering::SeqCst) > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert_eq!(logout_count.load(Ordering::SeqCst), 1);
}

#[test]
fn weak_merge_executes_with_degraded_reply() {
    // The client's second operation needs data no service reply carries:
    // the merge is weak; at runtime the mediator answers with whatever
    // it has (here: the optional field stays absent).
    let mut reg = SemanticRegistry::new();
    reg.declare_message_concept("op", ["client.op", "svc.op"]);
    let client_usage = linear_usage_protocol(
        "C",
        1,
        &[
            (
                template("client.op", &["a"]),
                template("client.op.reply", &["r"]),
            ),
            (
                {
                    let mut m = AbstractMessage::new("client.extra");
                    m.set_field("a", Value::Null);
                    m
                },
                {
                    let mut m = AbstractMessage::new("client.extra.reply");
                    m.push_field(Field::optional("exotic", Value::Null));
                    m.push_field(Field::new("unobtainable", Value::Null));
                    m
                },
            ),
        ],
    );
    let service_usage = linear_usage_protocol(
        "S",
        2,
        &[(template("svc.op", &["a"]), template("svc.op.reply", &["r"]))],
    );
    let (merged, report) = intertwine(
        &client_usage,
        &service_usage,
        &reg,
        &MergeOptions::default(),
    )
    .unwrap();
    assert_eq!(report.class, MergeClass::Weak);
    merged.validate().unwrap();
}
