//! Model inference (paper §7's outlook on automating model generation):
//! semantic declarations are learned from example exchanges, and the
//! learned registry drives the automatic merge end to end.

use starlink::automata::linear_usage_protocol;
use starlink::automata::merge::{intertwine, template, MergeClass, MergeOptions};
use starlink::message::equiv::infer_from_examples;
use starlink::message::{AbstractMessage, Value};

fn example(name: &str, fields: &[(&str, &str)]) -> AbstractMessage {
    let mut m = AbstractMessage::new(name);
    for (label, value) in fields {
        m.set_field(label, Value::Str((*value).to_owned()));
    }
    m
}

#[test]
fn inferred_registry_drives_the_merge() {
    // The developer records one real exchange against each API carrying
    // the same data, instead of writing declarations by hand.
    let examples = [
        (
            example("client.search", &[("text", "tree"), ("page_size", "7")]),
            example("service.find", &[("q", "tree"), ("limit", "7")]),
        ),
        (
            example("client.search.reply", &[("items", "[a, b]")]),
            example("service.find.reply", &[("results", "[a, b]")]),
        ),
        (
            example("client.post", &[("target", "x-1"), ("body", "hello")]),
            example("service.add", &[("id", "x-1"), ("content", "hello")]),
        ),
        (
            example("client.post.reply", &[("ticket", "t-9")]),
            example("service.add.reply", &[("receipt", "t-9")]),
        ),
    ];
    let registry = infer_from_examples(examples.iter().map(|(a, b)| (a, b)));

    // Learned declarations.
    assert!(registry.message_names_equivalent("client.search", "service.find"));
    assert!(registry.message_names_equivalent("client.post", "service.add"));
    assert_eq!(registry.field_concept("text"), registry.field_concept("q"));
    assert_eq!(
        registry.field_concept("page_size"),
        registry.field_concept("limit")
    );
    assert_eq!(
        registry.field_concept("items"),
        registry.field_concept("results")
    );
    assert_eq!(
        registry.field_concept("target"),
        registry.field_concept("id")
    );
    assert_eq!(
        registry.field_concept("body"),
        registry.field_concept("content")
    );

    // The learned registry is enough for the intertwining analysis.
    let client = linear_usage_protocol(
        "C",
        1,
        &[
            (
                template("client.search", &["text", "page_size"]),
                template("client.search.reply", &["items"]),
            ),
            (
                template("client.post", &["target", "body"]),
                template("client.post.reply", &["ticket"]),
            ),
        ],
    );
    let service = linear_usage_protocol(
        "S",
        2,
        &[
            (
                template("service.find", &["q", "limit"]),
                template("service.find.reply", &["results"]),
            ),
            (
                template("service.add", &["id", "content"]),
                template("service.add.reply", &["receipt"]),
            ),
        ],
    );
    let (merged, report) =
        intertwine(&client, &service, &registry, &MergeOptions::default()).unwrap();
    assert_eq!(report.class, MergeClass::Strong);
    assert_eq!(report.intertwined_count(), 2);
    merged.validate().unwrap();

    // The generated MTL contains the learned field mappings.
    let mtl: String = merged
        .transitions()
        .iter()
        .filter_map(|t| match &t.action {
            starlink::automata::Action::Gamma { mtl } => Some(mtl.clone()),
            _ => None,
        })
        .collect();
    assert!(mtl.contains("m2.q = m1.text"));
    assert!(mtl.contains("m2.limit = m1.page_size"));
    assert!(mtl.contains("m8.id = m7.target"));
}

#[test]
fn ambiguous_values_are_not_guessed() {
    // Two candidate fields hold the same value: no alignment is inferred.
    let a = example("a.op", &[("x", "5")]);
    let b = example("b.op", &[("p", "5"), ("q", "5")]);
    let registry = infer_from_examples([(&a, &b)]);
    assert_ne!(registry.field_concept("x"), registry.field_concept("p"));
    assert_ne!(registry.field_concept("x"), registry.field_concept("q"));
}

#[test]
fn more_examples_resolve_conflicts() {
    // One noisy example suggests x≅wrong; two clean examples outvote it.
    let pairs = [
        (
            example("a.op", &[("x", "1")]),
            example("b.op", &[("y", "1")]),
        ),
        (
            example("a.op", &[("x", "2")]),
            example("b.op", &[("y", "2")]),
        ),
        (
            example("a.op", &[("x", "3")]),
            example("b.op", &[("wrong", "3")]),
        ),
    ];
    let registry = infer_from_examples(pairs.iter().map(|(a, b)| (a, b)));
    assert_eq!(registry.field_concept("x"), registry.field_concept("y"));
    assert_ne!(registry.field_concept("x"), registry.field_concept("wrong"));
}
