//! The case study over the real TCP loopback (the network engine's
//! production transport, Fig. 6), plus fault-injection behaviour on the
//! deterministic in-memory transport.

use starlink::apps::calculator::{add_plus_mediator, AddClient, PlusService};
use starlink::apps::flickr::{FlickrClient, FlickrFlavor};
use starlink::apps::models::flickr_picasa_mediator;
use starlink::apps::picasa::PicasaService;
use starlink::apps::store::PhotoStore;
use starlink::core::MediatorHost;
use starlink::net::{Endpoint, FaultPlan, MemoryTransport, NetworkEngine};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn full_case_study_over_tcp_loopback() {
    let net = NetworkEngine::with_defaults();
    let store = PhotoStore::with_fixture();
    let picasa =
        PicasaService::deploy(&net, &Endpoint::tcp("127.0.0.1", 0), store.clone()).unwrap();
    let mediator =
        flickr_picasa_mediator(net.clone(), FlickrFlavor::XmlRpc, picasa.endpoint().clone())
            .unwrap();
    let host = MediatorHost::deploy(mediator, &Endpoint::tcp("127.0.0.1", 0)).unwrap();
    let mut client = FlickrClient::connect(&net, host.endpoint(), FlickrFlavor::XmlRpc).unwrap();

    let ids = client.search("tree", 3).unwrap();
    assert_eq!(ids.len(), 3);
    let info = client.get_info(&ids[0]).unwrap();
    assert_eq!(info.title, "Tall Tree");
    client.add_comment(&ids[0], "over tcp").unwrap();
    assert_eq!(store.comments("gphoto-1").last().unwrap().text, "over tcp");
}

#[test]
fn calculator_over_tcp_loopback() {
    let net = NetworkEngine::with_defaults();
    let plus = PlusService::deploy(&net, &Endpoint::tcp("127.0.0.1", 0)).unwrap();
    let mediator = add_plus_mediator(net.clone(), plus.endpoint().clone()).unwrap();
    let host = MediatorHost::deploy(mediator, &Endpoint::tcp("127.0.0.1", 0)).unwrap();
    let mut client = AddClient::connect(&net, host.endpoint()).unwrap();
    for (x, y) in [(1, 2), (0, 0), (-7, 7), (1_000_000, 2_000_000)] {
        assert_eq!(client.add(x, y).unwrap(), x + y);
    }
}

#[test]
fn dropped_message_surfaces_as_timeout() {
    // The 3rd message through the transport (the client's request after
    // a successful exchange) is silently dropped; the client observes a
    // timeout rather than a corrupt result.
    let mut net = NetworkEngine::new();
    net.register(Arc::new(MemoryTransport::with_faults(FaultPlan {
        drop_nth: vec![3],
        ..FaultPlan::default()
    })));
    let plus = PlusService::deploy(&net, &Endpoint::memory("plus")).unwrap();
    let mediator = add_plus_mediator(net.clone(), plus.endpoint().clone()).unwrap();
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("bridge")).unwrap();
    let mut client = AddClient::connect(&net, host.endpoint()).unwrap();
    // First exchange uses messages 1..=4 (client→med, med→svc, svc→med,
    // med→client); with message 3 dropped the reply never forms.
    let r = client.add(1, 1);
    assert!(r.is_err(), "dropped wire message must not yield a result");
}

#[test]
fn delayed_transport_still_correct() {
    let mut net = NetworkEngine::new();
    net.register(Arc::new(MemoryTransport::with_faults(FaultPlan {
        delay: Some(Duration::from_millis(5)),
        ..FaultPlan::default()
    })));
    let plus = PlusService::deploy(&net, &Endpoint::memory("plus")).unwrap();
    let mediator = add_plus_mediator(net.clone(), plus.endpoint().clone()).unwrap();
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("bridge")).unwrap();
    let mut client = AddClient::connect(&net, host.endpoint()).unwrap();
    assert_eq!(client.add(20, 22).unwrap(), 42);
}

#[test]
fn duplicated_request_does_not_corrupt_later_exchanges() {
    // Message 1 (the client's first request) is delivered twice. The
    // mediator treats the duplicate as the next session's request; the
    // calculator is idempotent so the client's own exchanges stay
    // correct.
    let mut net = NetworkEngine::new();
    net.register(Arc::new(MemoryTransport::with_faults(FaultPlan {
        duplicate_nth: vec![1],
        ..FaultPlan::default()
    })));
    let plus = PlusService::deploy(&net, &Endpoint::memory("plus")).unwrap();
    let mediator = add_plus_mediator(net.clone(), plus.endpoint().clone()).unwrap();
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("bridge")).unwrap();
    let mut client = AddClient::connect(&net, host.endpoint()).unwrap();
    assert_eq!(client.add(2, 3).unwrap(), 5);
}

#[test]
fn concurrent_clients_are_isolated() {
    // Several clients mediate simultaneously; sessions (and their
    // translation caches) must not bleed into each other.
    let net = NetworkEngine::with_defaults();
    let store = PhotoStore::with_fixture();
    let picasa = PicasaService::deploy(&net, &Endpoint::memory("picasa"), store).unwrap();
    let mediator =
        flickr_picasa_mediator(net.clone(), FlickrFlavor::XmlRpc, picasa.endpoint().clone())
            .unwrap();
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("mediator")).unwrap();
    let endpoint = host.endpoint().clone();

    let mut handles = Vec::new();
    for i in 0..6 {
        let net = net.clone();
        let endpoint = endpoint.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = FlickrClient::connect(&net, &endpoint, FlickrFlavor::XmlRpc).unwrap();
            let keyword = if i % 2 == 0 { "tree" } else { "beach" };
            let ids = client.search(keyword, 5).unwrap();
            let expected = if i % 2 == 0 { 3 } else { 1 };
            assert_eq!(ids.len(), expected, "client {i} ({keyword})");
            let info = client.get_info(&ids[0]).unwrap();
            assert!(!info.url.is_empty());
            info.title
        }));
    }
    let titles: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for (i, title) in titles.iter().enumerate() {
        let expected = if i % 2 == 0 {
            "Tall Tree"
        } else {
            "Sunny Beach"
        };
        assert_eq!(title, expected);
    }
}

#[test]
fn slp_directory_over_real_udp() {
    // The discovery substrate over the real UDP transport: SrvRqst and
    // SrvRply as actual datagrams on the loopback interface.
    use starlink::mdl::MessageCodec;
    use starlink::message::AbstractMessage;
    use starlink::message::Value;
    use starlink::protocols::discovery::{slp_codec, SlpDirectory};
    use std::collections::HashMap;

    let net = NetworkEngine::with_defaults();
    let directory = SlpDirectory::deploy(
        &net,
        &"udp://127.0.0.1:0".parse().unwrap(),
        HashMap::from([(
            "service:printer".to_owned(),
            vec!["service:printer://printsrv:515".to_owned()],
        )]),
    )
    .unwrap();
    let codec = slp_codec().unwrap();
    let mut rqst = AbstractMessage::new("SrvRqst");
    rqst.set_field("Version", Value::UInt(2));
    rqst.set_field("ServiceType", Value::Str("service:printer".into()));
    let mut conn = net.connect(directory.endpoint()).unwrap();
    conn.send(&codec.compose(&rqst).unwrap()).unwrap();
    let reply = codec
        .parse(&conn.receive_timeout(Duration::from_secs(5)).unwrap())
        .unwrap();
    assert_eq!(reply.name(), "SrvRply");
    assert_eq!(reply.get("Urls").unwrap().as_array().unwrap().len(), 1);
}
