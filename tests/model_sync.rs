//! Keeps the committed `models/` directory (the deployable model bundle a
//! Starlink operator would ship) in sync with the in-code models.
//!
//! Run with `STARLINK_UPDATE_MODELS=1` to regenerate the files.

use starlink::apps::models::{
    flickr_usage_automaton, merged_flickr_picasa, picasa_usage_automaton,
};
use starlink::automata::dsl;
use starlink::protocols::discovery::{SLP_MDL, SSDP_MDL};
use starlink::protocols::gdata::GDATA_MDL;
use starlink::protocols::giop::GIOP_MDL;
use starlink::protocols::http::HTTP_MDL;
use starlink::protocols::soap::SOAP_MDL;
use starlink::protocols::xmlrpc::XMLRPC_MDL;
use std::path::Path;

const REGISTRY_TXT: &str = "\
# Semantic declarations of the Flickr/Picasa case study (paper §3.2):
# which operations and fields of the two APIs denote the same concepts.
message photo-search = flickr.photos.search, picasa.photos.search
message comment-list = flickr.photos.comments.getList, picasa.getComments
message comment-add = flickr.photos.comments.addComment, picasa.addComment
field keyword = text, q
field result-limit = per_page, max-results
field photo-ref = photo_id, entry_id
field comment-text = comment_text, content
field photo-data = photo, photos, Entries
field comment-data = comments, commentEntries
";

fn expected_files() -> Vec<(&'static str, String)> {
    vec![
        ("GIOP.mdl", GIOP_MDL.to_owned()),
        ("HTTP.mdl", HTTP_MDL.to_owned()),
        ("SOAP.mdl", SOAP_MDL.to_owned()),
        ("XMLRPC.mdl", XMLRPC_MDL.to_owned()),
        ("GDATA.mdl", GDATA_MDL.to_owned()),
        ("SSDP.mdl", SSDP_MDL.to_owned()),
        ("SLP.mdl", SLP_MDL.to_owned()),
        ("case-study-registry.txt", REGISTRY_TXT.to_owned()),
        ("AFlickr.atm", dsl::print(&flickr_usage_automaton())),
        ("APicasa.atm", dsl::print(&picasa_usage_automaton())),
        (
            "AFlickr+APicasa.atm",
            dsl::print(&merged_flickr_picasa().unwrap().0),
        ),
    ]
}

#[test]
fn committed_models_match_code() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("models");
    let update = std::env::var("STARLINK_UPDATE_MODELS").is_ok();
    if update {
        std::fs::create_dir_all(&dir).unwrap();
    }
    let mut mismatches = Vec::new();
    for (name, expected) in expected_files() {
        let path = dir.join(name);
        if update {
            std::fs::write(&path, &expected).unwrap();
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(actual) if actual == expected => {}
            Ok(_) => mismatches.push(format!("{name}: content differs")),
            Err(e) => mismatches.push(format!("{name}: {e}")),
        }
    }
    assert!(
        mismatches.is_empty(),
        "models/ out of sync (run with STARLINK_UPDATE_MODELS=1 to regenerate):\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn committed_automata_parse_and_validate() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("models");
    for entry in std::fs::read_dir(&dir).into_iter().flatten().flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) == Some("atm") {
            let text = std::fs::read_to_string(&path).unwrap();
            let automaton = dsl::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            automaton
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        }
    }
}
