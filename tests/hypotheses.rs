//! The three hypotheses of the paper's evaluation (§5), as executable
//! checks (rows H1–H3 of DESIGN.md §4).

use starlink::apps::flickr::{FlickrClient, FlickrFlavor};
use starlink::apps::models::{flickr_picasa_mediator, merged_flickr_picasa};
use starlink::apps::picasa::PicasaService;
use starlink::apps::store::PhotoStore;
use starlink::automata::Action;
use starlink::core::MediatorHost;
use starlink::net::{Endpoint, MemoryTransport, NetworkEngine};
use std::sync::Arc;

fn network() -> NetworkEngine {
    let mut net = NetworkEngine::new();
    net.register(Arc::new(MemoryTransport::new()));
    net
}

/// H1: "The Starlink models can specify the application differences
/// between Flickr and Picasa independent of SOAP, XML-RPC and HTTP
/// messages."
#[test]
fn h1_application_model_is_middleware_independent() {
    let (merged, _) = merged_flickr_picasa().unwrap();
    // No transition of the application model references any protocol
    // message or field: no GIOP/SOAP/XML-RPC/HTTP vocabulary anywhere.
    let forbidden = [
        "SOAP",
        "soap:",
        "methodCall",
        "GIOP",
        "HTTP",
        "RequestURI",
        "Envelope",
        "ParameterArray",
        "methodResponse",
    ];
    for t in merged.transitions() {
        let text = match &t.action {
            Action::Gamma { mtl } => mtl.clone(),
            action => {
                let m = action.message().expect("non-gamma carries a message");
                let mut s = m.name().to_owned();
                for f in m.fields() {
                    s.push(' ');
                    s.push_str(f.label());
                }
                s
            }
        };
        for word in forbidden {
            assert!(
                !text.contains(word),
                "application model leaks protocol vocabulary `{word}` in `{text}`"
            );
        }
    }
    // And the *same* model object feeds both concrete use cases — the
    // two mediators below are built from it without modification.
}

/// H2: "Concrete models for both the XML-RPC and SOAP use cases can be
/// successfully generated, deployed and executed to achieve the required
/// interoperability with the Picasa API."
#[test]
fn h2_both_use_cases_deploy_and_interoperate() {
    for flavor in [FlickrFlavor::XmlRpc, FlickrFlavor::Soap] {
        let net = network();
        let store = PhotoStore::with_fixture();
        let picasa = PicasaService::deploy(&net, &Endpoint::memory("picasa"), store).unwrap();
        let mediator =
            flickr_picasa_mediator(net.clone(), flavor, picasa.endpoint().clone()).unwrap();
        let host = MediatorHost::deploy(mediator, &Endpoint::memory("mediator")).unwrap();
        let mut client = FlickrClient::connect(&net, host.endpoint(), flavor).unwrap();

        let ids = client.search("tree", 2).unwrap();
        assert_eq!(ids.len(), 2, "{flavor:?} search");
        let info = client.get_info(&ids[0]).unwrap();
        assert!(!info.url.is_empty(), "{flavor:?} getInfo");
        let comments = client.get_comments(&ids[0]).unwrap();
        assert_eq!(comments.len(), 2, "{flavor:?} getList");
        let cid = client.add_comment(&ids[0], "h2").unwrap();
        assert!(!cid.is_empty(), "{flavor:?} addComment");
    }
}

/// H3 (part 1): "the definition of a single application model simplifies
/// the development of interoperability solutions" — the two use cases
/// differ only in which binding is attached; the merged model is shared
/// verbatim.
#[test]
fn h3_single_model_drives_both_bindings() {
    let (a, _) = merged_flickr_picasa().unwrap();
    let (b, _) = merged_flickr_picasa().unwrap();
    // Deterministic construction: the exact same model every time —
    // nothing per-protocol enters its construction.
    assert_eq!(a.states().len(), b.states().len());
    assert_eq!(a.transitions().len(), b.transitions().len());
    for (x, y) in a.transitions().iter().zip(b.transitions()) {
        assert_eq!(x.action.label(), y.action.label());
    }
}

/// H3 (part 2) is exercised end-to-end in `tests/evolution.rs`.
#[test]
fn h3_model_artifact_sizes_are_small() {
    // The "development effort" proxy the paper argues about: the whole
    // interoperability solution is a handful of declarative artefacts.
    let (merged, _) = merged_flickr_picasa().unwrap();
    let mtl_lines: usize = merged
        .transitions()
        .iter()
        .filter_map(|t| match &t.action {
            Action::Gamma { mtl } => Some(mtl.lines().filter(|l| !l.trim().is_empty()).count()),
            _ => None,
        })
        .sum();
    // The complete translation logic for four operations is tiny.
    assert!(
        mtl_lines < 40,
        "expected a compact model, found {mtl_lines} MTL lines"
    );
}
