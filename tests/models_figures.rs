//! Figure-by-figure reproduction checks (rows F2–F8 of DESIGN.md §4):
//! the model artefacts of the paper exist, have the published shape, and
//! round-trip through the framework's languages.

use starlink::apps::calculator::{add_usage_automaton, merged_add_plus};
use starlink::apps::models::{
    flickr_usage_automaton, merged_flickr_picasa, picasa_usage_automaton,
};
use starlink::automata::{dsl, Action};
use starlink::core::concretize;
use starlink::mdl::{MdlCodec, MdlDocument, MessageCodec};
use starlink::message::{AbstractMessage, Value};
use starlink::protocols::giop::{giop_binding, iiop_client_automaton, GIOP_MDL};
use starlink::protocols::soap::{soap_binding, soap_client_automaton};
use std::collections::HashMap;

/// F2 — the Fig. 2 usage-protocol automata exist and follow the figure's
/// operation sequences.
#[test]
fn f2_usage_protocols() {
    let flickr = flickr_usage_automaton();
    let labels: Vec<String> = flickr
        .transitions()
        .iter()
        .map(|t| t.action.label())
        .collect();
    assert_eq!(
        labels,
        vec![
            "!flickr.photos.search",
            "?flickr.photos.search.reply",
            "!flickr.photos.getInfo",
            "?flickr.photos.getInfo.reply",
            "!flickr.photos.comments.getList",
            "?flickr.photos.comments.getList.reply",
            "!flickr.photos.comments.addComment",
            "?flickr.photos.comments.addComment.reply",
        ]
    );
    let picasa = picasa_usage_automaton();
    assert_eq!(picasa.color(), 2);
    assert_eq!(picasa.message_names().len(), 6);
}

/// F3 — the merged automaton has Fig. 3's structure: colors alternate,
/// six bi-colored states, γ-transitions only at bi-colored or
/// translation states.
#[test]
fn f3_merged_automaton_structure() {
    let (merged, report) = merged_flickr_picasa().unwrap();
    assert_eq!(report.intertwined_count(), 3);
    assert_eq!(
        merged.states().iter().filter(|s| s.is_bicolored()).count(),
        6
    );
    // Every γ-transition leaves a bi-colored state or a (single-colored)
    // local-translation state; no send/receive leaves a bi-colored state.
    for t in merged.transitions() {
        let from = merged.state(&t.from).unwrap();
        match &t.action {
            Action::Gamma { .. } => {}
            _ => assert!(
                !from.is_bicolored() || t.action.label().starts_with('?'),
                "non-γ leaving bi-colored state: {t}"
            ),
        }
    }
}

/// F3 (tooling) — the merged model round-trips through the automaton DSL
/// (the stand-in for the paper's XML model language).
#[test]
fn f3_dsl_roundtrip_of_merged_model() {
    let (merged, _) = merged_flickr_picasa().unwrap();
    let text = dsl::print(&merged);
    let back = dsl::parse(&text).unwrap();
    assert_eq!(back.states().len(), merged.states().len());
    assert_eq!(back.transitions().len(), merged.transitions().len());
    for (x, y) in merged.transitions().iter().zip(back.transitions()) {
        assert_eq!(x.action.label(), y.action.label());
        assert_eq!(x.from, y.from);
    }
}

/// F4 — the Fig. 4 protocol automata carry the printed annotations.
#[test]
fn f4_protocol_automata_annotations() {
    let iiop = iiop_client_automaton(1);
    assert_eq!(
        iiop.network(1).unwrap().to_string(),
        "transport_protocol=\"tcp\" mode=\"sync\" mdl=\"GIOP.mdl\""
    );
    let soap = soap_client_automaton(2);
    assert_eq!(
        soap.network(2).unwrap().to_string(),
        "transport_protocol=\"tcp\" mode=\"sync\" mdl=\"SOAP.mdl\""
    );
}

/// F5 — the paper's Fig. 5 GIOP MDL text (extended with the real header)
/// compiles and drives a working parser/composer pair.
#[test]
fn f5_giop_mdl_compiles_and_roundtrips() {
    let doc = MdlDocument::parse(GIOP_MDL).unwrap();
    assert_eq!(doc.messages.len(), 2);
    assert_eq!(doc.messages[0].name, "GIOPRequest");
    assert_eq!(doc.messages[1].name, "GIOPReply");

    let codec = MdlCodec::from_document(&doc).unwrap();
    let mut msg = AbstractMessage::new("GIOPRequest");
    msg.set_field("RequestID", Value::UInt(1));
    msg.set_field("ResponseExpected", Value::UInt(1));
    msg.set_field("VersionMajor", Value::UInt(1));
    msg.set_field("VersionMinor", Value::UInt(0));
    msg.set_field("Flags", Value::UInt(0));
    msg.set_field("ObjectKey", Value::Bytes(b"k".to_vec()));
    msg.set_field("Operation", Value::from("Add"));
    msg.set_field(
        "ParameterArray",
        Value::Array(vec![Value::Int(1), Value::Int(2)]),
    );
    let wire = codec.compose(&msg).unwrap();
    let back = codec.parse(&wire).unwrap();
    assert_eq!(back.get("Operation").unwrap().as_str(), Some("Add"));
}

/// F5 (verbatim) — the exact Fig. 5 text as printed in the paper also
/// parses under the MDL item grammar.
#[test]
fn f5_verbatim_paper_text_parses() {
    let fig5 = "\
<Message:GIOPRequest>
<Rule:MessageType=0>
<RequestID:32><Response:8>
<ObjectKeyLength:32><ObjectKey:ObjectKeyLength>
<OperationLength:32><Operation:OperationLength>
<align:64><ParameterArray:eof>
<End:Message>
<Message:GIOPReply>
<Rule:MessageType=1>
<RequestID:32><ReplyStatus:32><ContextListLength:32>
<align:64><ParameterArray:eof>
<End:Message>";
    let doc = MdlDocument::parse(fig5).unwrap();
    assert_eq!(doc.messages.len(), 2);
    assert!(MdlCodec::from_document(&doc).is_ok());
}

/// F7 — one abstract Add automaton binds to both IIOP and SOAP.
#[test]
fn f7_binding_add_to_both_protocols() {
    let usage = add_usage_automaton();
    let iiop = concretize(&usage, &HashMap::from([(1, giop_binding())])).unwrap();
    let soap = concretize(&usage, &HashMap::from([(1, soap_binding())])).unwrap();
    assert_eq!(iiop.transitions()[0].action.label(), "!GIOPRequest");
    assert_eq!(soap.transitions()[0].action.label(), "!SOAPRequest");
    // The Fig. 7 action rule: `!Action = GIOPRequest→operation`.
    let req = iiop.transitions()[0].action.message().unwrap();
    assert_eq!(req.get("Operation").unwrap().as_str(), Some("Add"));
}

/// F8 — the concrete merged Add/Plus automaton carries protocol-level
/// MTL (`ParameterArray[i]` paths), as drawn on the figure's right side.
#[test]
fn f8_concrete_merged_automaton() {
    let (merged, _) = merged_add_plus().unwrap();
    let bindings = HashMap::from([(1, giop_binding()), (2, soap_binding())]);
    let concrete = concretize(&merged, &bindings).unwrap();
    let gammas: Vec<String> = concrete
        .transitions()
        .iter()
        .filter_map(|t| match &t.action {
            Action::Gamma { mtl } => Some(mtl.clone()),
            _ => None,
        })
        .collect();
    assert!(gammas[0].contains("m2.Params[0] = m1.ParameterArray[0]"));
    assert!(gammas[1].contains("m5.ParameterArray[0] = m4.Params[0]"));
}

/// The merged models export DOT for the paper's visual form.
#[test]
fn figures_export_dot() {
    for automaton in [
        flickr_usage_automaton(),
        picasa_usage_automaton(),
        merged_flickr_picasa().unwrap().0,
        merged_add_plus().unwrap().0,
    ] {
        let dot = automaton.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("__start"));
    }
}
