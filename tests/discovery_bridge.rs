//! Dual-protocol service discovery (the paper's "service discovery and
//! RPC" bridging domain): an SSDP-style searcher finds services that are
//! registered only with an SLP directory, through a Starlink discovery
//! bridge.

use starlink::net::{Endpoint, MemoryTransport, NetworkEngine};
use starlink::protocols::discovery::{DiscoveryBridge, SlpDirectory, SsdpClient};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn setup() -> (MemoryTransport, NetworkEngine) {
    let transport = MemoryTransport::new();
    let mut net = NetworkEngine::new();
    net.register(Arc::new(transport.clone()));
    (transport, net)
}

#[test]
fn ssdp_search_discovers_slp_registered_service() {
    let (transport, net) = setup();
    let directory = SlpDirectory::deploy(
        &net,
        &Endpoint::memory("slp-da"),
        HashMap::from([
            (
                "service:printer".to_owned(),
                vec![
                    "service:printer://printsrv:515".to_owned(),
                    "service:printer://backup:515".to_owned(),
                ],
            ),
            (
                "service:scanner".to_owned(),
                vec!["service:scanner://scansrv:6566".to_owned()],
            ),
        ]),
    )
    .unwrap();
    let _bridge = DiscoveryBridge::deploy(
        &transport,
        net.clone(),
        directory.endpoint().clone(),
        HashMap::from([
            (
                "urn:schemas-upnp-org:service:Printing:1".to_owned(),
                "service:printer".to_owned(),
            ),
            (
                "urn:schemas-upnp-org:service:Scanning:1".to_owned(),
                "service:scanner".to_owned(),
            ),
        ]),
    );

    let client = SsdpClient::new(transport, net, "searcher-1").unwrap();
    let locations = client
        .search(
            "urn:schemas-upnp-org:service:Printing:1",
            Duration::from_secs(1),
        )
        .unwrap();
    assert_eq!(
        locations,
        vec![
            "service:printer://printsrv:515".to_owned(),
            "service:printer://backup:515".to_owned(),
        ]
    );
}

#[test]
fn unknown_service_family_gets_no_answer() {
    let (transport, net) = setup();
    let directory =
        SlpDirectory::deploy(&net, &Endpoint::memory("slp-da"), HashMap::new()).unwrap();
    let _bridge = DiscoveryBridge::deploy(
        &transport,
        net.clone(),
        directory.endpoint().clone(),
        HashMap::from([(
            "urn:schemas-upnp-org:service:Printing:1".to_owned(),
            "service:printer".to_owned(),
        )]),
    );
    let client = SsdpClient::new(transport, net, "searcher-2").unwrap();
    // The bridge has no mapping for this target: silence, like a real
    // SSDP network with no matching device.
    let locations = client
        .search(
            "urn:schemas-upnp-org:service:Unknown:1",
            Duration::from_millis(300),
        )
        .unwrap();
    assert!(locations.is_empty());
}

#[test]
fn two_searchers_both_get_answers() {
    let (transport, net) = setup();
    let directory = SlpDirectory::deploy(
        &net,
        &Endpoint::memory("slp-da"),
        HashMap::from([(
            "service:printer".to_owned(),
            vec!["service:printer://printsrv:515".to_owned()],
        )]),
    )
    .unwrap();
    let _bridge = DiscoveryBridge::deploy(
        &transport,
        net.clone(),
        directory.endpoint().clone(),
        HashMap::from([(
            "urn:schemas-upnp-org:service:Printing:1".to_owned(),
            "service:printer".to_owned(),
        )]),
    );
    for name in ["searcher-a", "searcher-b"] {
        let client = SsdpClient::new(transport.clone(), net.clone(), name).unwrap();
        let locations = client
            .search(
                "urn:schemas-upnp-org:service:Printing:1",
                Duration::from_secs(1),
            )
            .unwrap();
        assert_eq!(locations.len(), 1, "{name}");
    }
}
