//! Runtime conformance monitoring end to end: a monitored client cannot
//! deviate from its declared usage protocol; a conforming run is
//! accepted.

use starlink::apps::calculator::{add_usage_automaton, AddService};
use starlink::apps::flickr::flickr_interface;
use starlink::apps::models::flickr_usage_automaton;
use starlink::core::{ProtocolMonitor, RpcClient};
use starlink::message::{AbstractMessage, Value};
use starlink::net::{Endpoint, MemoryTransport, NetworkEngine};
use starlink::protocols::giop::{giop_binding, giop_codec};
use std::sync::Arc;

fn network() -> NetworkEngine {
    let mut net = NetworkEngine::new();
    net.register(Arc::new(MemoryTransport::new()));
    net
}

#[test]
fn monitored_client_conforming_run() {
    let net = network();
    let service = AddService::deploy(&net, &Endpoint::memory("add")).unwrap();
    let monitor = ProtocolMonitor::new(add_usage_automaton()).unwrap();
    let mut client = RpcClient::connect(
        &net,
        service.endpoint(),
        Arc::new(giop_codec().unwrap()),
        giop_binding(),
        starlink::apps::calculator::add_interface(),
    )
    .unwrap()
    .with_monitor(monitor);

    let mut req = AbstractMessage::new("Add");
    req.set_field("x", Value::Int(1));
    req.set_field("y", Value::Int(2));
    let reply = client.call(&req).unwrap();
    assert_eq!(reply.get("z").unwrap().to_text(), "3");
    assert!(client.monitor().unwrap().is_accepting());
}

#[test]
fn monitored_client_blocks_nonconforming_call_before_sending() {
    let net = network();
    let service = AddService::deploy(&net, &Endpoint::memory("add")).unwrap();
    let monitor = ProtocolMonitor::new(add_usage_automaton()).unwrap();
    let mut client = RpcClient::connect(
        &net,
        service.endpoint(),
        Arc::new(giop_codec().unwrap()),
        giop_binding(),
        starlink::apps::calculator::add_interface(),
    )
    .unwrap()
    .with_monitor(monitor);

    // `Subtract` is not part of the Add usage protocol: rejected locally,
    // the wire never sees it.
    let mut bad = AbstractMessage::new("Subtract");
    bad.set_field("x", Value::Int(1));
    bad.set_field("y", Value::Int(2));
    let err = bad_call(&mut client, &bad);
    assert!(err.contains("unexpected message"), "{err}");

    // The protocol run is unharmed: the conforming call succeeds.
    let mut req = AbstractMessage::new("Add");
    req.set_field("x", Value::Int(5));
    req.set_field("y", Value::Int(6));
    assert_eq!(client.call(&req).unwrap().get("z").unwrap().to_text(), "11");
}

fn bad_call(client: &mut RpcClient, request: &AbstractMessage) -> String {
    match client.call(request) {
        Ok(_) => panic!("non-conforming call must not succeed"),
        Err(e) => e.to_string(),
    }
}

#[test]
fn flickr_usage_protocol_monitor_tracks_the_case_study_order() {
    use starlink::message::Direction;
    let mut monitor = ProtocolMonitor::new(flickr_usage_automaton()).unwrap();
    // The Fig. 2 order.
    let ops = [
        "flickr.photos.search",
        "flickr.photos.getInfo",
        "flickr.photos.comments.getList",
        "flickr.photos.comments.addComment",
    ];
    for op in ops {
        monitor.observe(Direction::Sent, op).unwrap();
        monitor
            .observe(Direction::Received, &format!("{op}.reply"))
            .unwrap();
    }
    assert!(monitor.is_accepting());

    // Skipping ahead violates the protocol.
    monitor.reset();
    assert!(monitor
        .observe(Direction::Sent, "flickr.photos.comments.addComment")
        .is_err());
    // The interface has 4 operations; the monitor knows only one is
    // allowed first.
    assert_eq!(flickr_interface().operations().len(), 4);
    assert_eq!(monitor.allowed(), vec!["!flickr.photos.search"]);
}
